// The network layer (S45): framing robustness, protocol codec fidelity, and
// the solve daemon's end-to-end contracts -- loopback results bit-identical to
// the in-process facade, graceful drain resolving every accepted request, and
// cancellation of outstanding work when a client disconnects.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/core/instance_json.hpp"
#include "mpss/net/client.hpp"
#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"
#include "mpss/net/server.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/json.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/random.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss::net {
namespace {

Instance small_instance() {
  return Instance({Job{Q(0), Q(8), Q(6)}, Job{Q(2), Q(4), Q(6)},
                   Job{Q(2), Q(4), Q(4)}},
                  2);
}

Instance fractional_instance() {
  return Instance({Job{Q(0), Q(1, 2), Q(2, 3)}, Job{Q(1, 3), Q(5, 6), Q(1, 7)},
                   Job{Q(1, 4), Q(2), Q(3, 2)}, Job{Q(0), Q(2), Q(1)}},
                  2);
}

Instance heavy_instance(std::uint64_t seed) {
  return generate_uniform({.jobs = 48, .machines = 4, .horizon = 96,
                           .max_window = 10, .max_work = 8}, seed);
}

/// A connected AF_UNIX socket pair: the cheapest way to exercise framing and
/// raw protocol bytes without a real TCP listener.
struct SocketPair {
  ScopedFd a;
  ScopedFd b;

  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = ScopedFd(fds[0]);
    b = ScopedFd(fds[1]);
  }
};

/// Raw TCP connection to a server, for speaking malformed bytes at it.
ScopedFd raw_connect(std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  EXPECT_TRUE(fd.valid());
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                      sizeof address),
            0);
  return fd;
}

// ---- framing ---------------------------------------------------------------

TEST(Framing, RoundTripsPayloads) {
  SocketPair pair;
  for (const std::string& payload :
       {std::string(""), std::string("x"), std::string(100000, 'q'),
        std::string("\0\x01\xff binary \n", 12)}) {
    write_frame(pair.a.get(), payload);
    std::string read_back;
    ASSERT_TRUE(read_frame(pair.b.get(), read_back));
    EXPECT_EQ(read_back, payload);
  }
}

TEST(Framing, CleanEofAtBoundaryReturnsFalse) {
  SocketPair pair;
  write_frame(pair.a.get(), "last");
  pair.a.close();
  std::string payload;
  ASSERT_TRUE(read_frame(pair.b.get(), payload));
  EXPECT_EQ(payload, "last");
  EXPECT_FALSE(read_frame(pair.b.get(), payload));
}

TEST(Framing, TruncationInsidePrefixOrPayloadThrows) {
  {
    SocketPair pair;
    const char half_prefix[2] = {0, 0};
    ASSERT_EQ(::send(pair.a.get(), half_prefix, 2, 0), 2);
    pair.a.close();
    std::string payload;
    EXPECT_THROW((void)read_frame(pair.b.get(), payload), FrameError);
  }
  {
    SocketPair pair;
    const unsigned char prefix[4] = {0, 0, 0, 10};  // promises 10 bytes
    ASSERT_EQ(::send(pair.a.get(), prefix, 4, 0), 4);
    ASSERT_EQ(::send(pair.a.get(), "abc", 3, 0), 3);  // delivers 3
    pair.a.close();
    std::string payload;
    EXPECT_THROW((void)read_frame(pair.b.get(), payload), FrameError);
  }
}

TEST(Framing, OversizedFramesAreRejectedOnBothSides) {
  SocketPair pair;
  EXPECT_THROW(write_frame(pair.a.get(), std::string(64, 'x'), /*max_bytes=*/63),
               FrameError);
  // A hostile prefix announcing more than the cap must throw before any
  // allocation of that size.
  const unsigned char huge[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(pair.a.get(), huge, 4, 0), 4);
  std::string payload;
  EXPECT_THROW((void)read_frame(pair.b.get(), payload, /*max_bytes=*/1 << 20),
               FrameError);
}

TEST(Framing, FuzzedStreamsNeverCrash) {
  // Random byte streams into the reader: every outcome must be a clean EOF,
  // a parsed (garbage) frame, or FrameError -- never a crash or a hang. The
  // cap keeps hostile length prefixes from allocating.
  Xoshiro256 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    SocketPair pair;
    std::size_t length = static_cast<std::size_t>(rng.below(64));
    std::string bytes(length, '\0');
    for (char& c : bytes) c = static_cast<char>(rng() & 0xff);
    ASSERT_EQ(::send(pair.a.get(), bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    pair.a.close();
    std::string payload;
    try {
      while (read_frame(pair.b.get(), payload, /*max_bytes=*/4096)) {
      }
    } catch (const FrameError&) {
      // expected for most random streams
    }
  }
}

// ---- protocol codec --------------------------------------------------------

TEST(Protocol, RequestRoundTrips) {
  Request request;
  request.id = 42;
  request.verb = Verb::kSolveMany;
  request.instances = {fractional_instance(), small_instance()};
  request.options.engine = Engine::kFast;
  request.options.fast_epsilon = 1e-7;
  request.priority = 3;
  request.deadline_ms = 250;

  Request decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.verb, request.verb);
  ASSERT_EQ(decoded.instances.size(), 2u);
  EXPECT_EQ(decoded.instances[0], request.instances[0]);
  EXPECT_EQ(decoded.instances[1], request.instances[1]);
  EXPECT_EQ(decoded.options.engine, Engine::kFast);
  EXPECT_EQ(decoded.options.fast_epsilon, 1e-7);
  EXPECT_EQ(decoded.priority, 3);
  EXPECT_EQ(decoded.deadline_ms, 250);
}

TEST(Protocol, ResultRoundTripsBitIdentically) {
  SolveResult original = solve(fractional_instance());
  ASSERT_TRUE(original.ok());
  ASSERT_NE(original.exact_schedule(), nullptr);

  SolveResult decoded = result_from_json_value(result_to_json_value(original));
  EXPECT_EQ(decoded.status, original.status);
  EXPECT_EQ(decoded.error_detail, original.error_detail);
  EXPECT_EQ(decoded.energy, original.energy);  // bit-equal doubles
  ASSERT_NE(decoded.exact_schedule(), nullptr);
  const Schedule& a = *original.exact_schedule();
  const Schedule& b = *decoded.exact_schedule();
  ASSERT_EQ(a.machines(), b.machines());
  for (std::size_t machine = 0; machine < a.machines(); ++machine) {
    auto sa = a.machine(machine);
    auto sb = b.machine(machine);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i], sb[i]);  // exact rational slices
    }
  }
}

TEST(Protocol, DecodersRejectBadDocuments) {
  auto code_of = [](std::string_view payload) {
    try {
      (void)decode_request(payload);
    } catch (const ProtocolError& error) {
      return error.code();
    }
    return ErrorCode::kInternal;  // "did not throw" sentinel
  };
  EXPECT_EQ(code_of("not json"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"id":1,"verb":"solve"})"), ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(code_of(R"({"v":2,"id":1,"verb":"solve"})"),
            ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(code_of(R"({"v":1,"id":1,"verb":"conquer"})"), ErrorCode::kUnknownVerb);
  EXPECT_EQ(code_of(R"({"v":1,"id":1,"verb":"solve"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"v":1,"id":1,"verb":"solve","instance":7})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, ErrorResponsesCarryCodeAndDetail) {
  std::string wire = encode_error_response(9, ErrorCode::kQueueFull, "full up");
  Response response = decode_response(wire);
  EXPECT_EQ(response.id, 9u);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kQueueFull);
  EXPECT_EQ(response.detail, "full up");
}

TEST(Protocol, TraceContextRoundTripsAsDecimalStrings) {
  Request request;
  request.id = 7;
  request.verb = Verb::kSolve;
  request.instances = {small_instance()};
  // A trace id above 2^53 is exactly the case doubles would corrupt; the
  // codec must carry it as a decimal string and decode it bit-exactly.
  request.trace_id = 18347587744294764545ull;
  request.parent_span = 3;

  std::string wire = encode_request(request);
  EXPECT_NE(wire.find("\"trace\""), std::string::npos);
  EXPECT_NE(wire.find("\"18347587744294764545\""), std::string::npos);
  Request decoded = decode_request(wire);
  EXPECT_EQ(decoded.trace_id, 18347587744294764545ull);
  EXPECT_EQ(decoded.parent_span, 3u);

  // An untraced request must not grow a trace member, and decoding one
  // yields the zero context.
  request.trace_id = 0;
  request.parent_span = 0;
  wire = encode_request(request);
  EXPECT_EQ(wire.find("\"trace\""), std::string::npos);
  decoded = decode_request(wire);
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_EQ(decoded.parent_span, 0u);

  // Numeric (non-string) trace ids are a protocol error, not a silent
  // truncation through double.
  EXPECT_THROW(
      (void)decode_request(
          R"({"v":1,"id":1,"verb":"health","trace":{"id":123}})"),
      ProtocolError);
}

TEST(Protocol, NamesRoundTrip) {
  for (Verb verb : {Verb::kSolve, Verb::kSolveMany, Verb::kStats, Verb::kHealth,
                    Verb::kMetrics, Verb::kShutdown}) {
    EXPECT_EQ(verb_from_name(verb_name(verb)), verb);
  }
  EXPECT_FALSE(verb_from_name("conquer").has_value());
  for (ErrorCode code :
       {ErrorCode::kBadFrame, ErrorCode::kBadRequest,
        ErrorCode::kUnsupportedVersion, ErrorCode::kUnknownVerb,
        ErrorCode::kQueueFull, ErrorCode::kShutdown, ErrorCode::kInternal}) {
    EXPECT_EQ(error_code_from_name(error_code_name(code)), code);
  }
  EXPECT_FALSE(error_code_from_name("nope").has_value());
}

// ---- server end-to-end -----------------------------------------------------

TEST(SolveServer, LoopbackSolveIsBitIdenticalToInProcess) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());

  for (const Instance& instance : {small_instance(), fractional_instance()}) {
    SolveResult local = solve(instance);
    SolveResult remote = client.solve(instance);
    EXPECT_EQ(remote.status, local.status);
    EXPECT_EQ(remote.error_detail, local.error_detail);
    EXPECT_EQ(remote.energy, local.energy);  // bit-equal, not approximately
    ASSERT_NE(remote.exact_schedule(), nullptr);
    ASSERT_NE(local.exact_schedule(), nullptr);
    ASSERT_EQ(remote.exact_schedule()->machines(),
              local.exact_schedule()->machines());
    for (std::size_t m = 0; m < local.exact_schedule()->machines(); ++m) {
      auto remote_slices = remote.exact_schedule()->machine(m);
      auto local_slices = local.exact_schedule()->machine(m);
      ASSERT_EQ(remote_slices.size(), local_slices.size());
      for (std::size_t i = 0; i < local_slices.size(); ++i) {
        EXPECT_EQ(remote_slices[i], local_slices[i]);
      }
    }
  }
  server.shutdown();
}

TEST(SolveServer, SolveManyPreservesOrderAndOptionsTravel) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  std::vector<Instance> instances = {small_instance(), fractional_instance(),
                                     small_instance().with_machines(1)};
  SolveOptions options;
  options.engine = Engine::kFast;
  std::vector<SolveResult> remote = client.solve_many(instances, options);
  ASSERT_EQ(remote.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SolveResult local = solve(instances[i], options);
    EXPECT_EQ(remote[i].status, local.status);
    EXPECT_EQ(remote[i].energy, local.energy);
    EXPECT_NE(remote[i].fast_schedule(), nullptr);  // fast engine travelled
  }
  server.shutdown();
}

TEST(SolveServer, SolveLevelFailuresComeBackAsStatuses) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  SolveOptions bad;
  bad.engine = Engine::kLp;
  bad.lp_grid = 1;
  SolveResult result = client.solve(small_instance(), bad);
  EXPECT_EQ(result.status, SolveStatus::kInvalidOptions);
  EXPECT_FALSE(result.error_detail.empty());  // error_detail over the wire
  server.shutdown();
}

TEST(SolveServer, PowerSpecTravelsWithTheInstance) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  Instance cube = small_instance();
  Instance square = cube.with_power(PowerSpec::alpha(2.0));
  EXPECT_EQ(client.solve(cube).energy, solve(cube).energy);
  EXPECT_EQ(client.solve(square).energy, solve(square).energy);
  EXPECT_NE(client.solve(cube).energy, client.solve(square).energy);
  server.shutdown();
}

TEST(SolveServer, StatsAndHealthVerbs) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  json::Value health = client.health();
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("protocol").as_double(),
            static_cast<double>(kProtocolVersion));

  (void)client.solve(small_instance());
  (void)client.solve(small_instance());  // cache hit
  json::Value stats = client.stats();
  EXPECT_EQ(stats.at("cache").at("hits").as_double(), 1.0);
  EXPECT_EQ(stats.at("cache").at("misses").as_double(), 1.0);
  EXPECT_GE(stats.at("workers").as_double(), 1.0);
  server.shutdown();
}

TEST(SolveServer, CacheIsSharedAcrossConnections) {
  SolveServer server;
  SolveClient first("127.0.0.1", server.port());
  (void)first.solve(small_instance());
  SolveClient second("127.0.0.1", server.port());
  (void)second.solve(small_instance());
  json::Value stats = second.stats();
  EXPECT_EQ(stats.at("cache").at("hits").as_double(), 1.0);
  server.shutdown();
}

TEST(SolveServer, MalformedRequestsGetErrorResponsesAndTheConnectionSurvives) {
  SolveServer server;
  ScopedFd raw = raw_connect(server.port());

  write_frame(raw.get(), "this is not json");
  std::string payload;
  ASSERT_TRUE(read_frame(raw.get(), payload));
  Response bad = decode_response(payload);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, ErrorCode::kBadRequest);

  write_frame(raw.get(), R"({"v":99,"id":5,"verb":"solve"})");
  ASSERT_TRUE(read_frame(raw.get(), payload));
  EXPECT_EQ(decode_response(payload).code, ErrorCode::kUnsupportedVersion);

  // The connection is still serviceable after two bad requests.
  Request request;
  request.id = 6;
  request.verb = Verb::kHealth;
  write_frame(raw.get(), encode_request(request));
  ASSERT_TRUE(read_frame(raw.get(), payload));
  EXPECT_TRUE(decode_response(payload).ok);
  server.shutdown();
}

TEST(SolveServer, DeadlineTravelsAndExpires) {
  SolveServerOptions options;
  options.service.threads = 1;
  SolveServer server(std::move(options));
  SolveClient client("127.0.0.1", server.port());
  // A 48-job exact solve cannot finish in 1ms; the daemon must report
  // kDeadlineExceeded through the normal result path, not an error payload.
  SolveResult result = client.solve(heavy_instance(1), SolveOptions{},
                                    /*priority=*/0, /*deadline_ms=*/1);
  EXPECT_EQ(result.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(result.error_detail.empty());
  server.shutdown();
}

TEST(SolveServer, GracefulDrainResolvesEveryAcceptedRequest) {
  SolveServerOptions options;
  options.service.threads = 2;
  SolveServer server(std::move(options));

  // Pipeline several non-trivial solves plus a shutdown verb on one raw
  // connection WITHOUT reading responses. The daemon's reader ingests frames
  // in order, so by the time the shutdown verb is handled every earlier solve
  // has been accepted; the drain contract then demands all of them resolve
  // and their responses be written before the listener closes.
  ScopedFd raw = raw_connect(server.port());
  constexpr std::uint64_t kSolves = 4;
  for (std::uint64_t i = 0; i < kSolves; ++i) {
    Request request;
    request.id = i + 1;
    request.verb = Verb::kSolve;
    request.instances.push_back(heavy_instance(i + 1));
    write_frame(raw.get(), encode_request(request));
  }
  Request shutdown_request;
  shutdown_request.id = kSolves + 1;
  shutdown_request.verb = Verb::kShutdown;
  write_frame(raw.get(), encode_request(shutdown_request));

  std::string payload;
  for (std::uint64_t i = 0; i < kSolves; ++i) {
    ASSERT_TRUE(read_frame(raw.get(), payload)) << "response " << i;
    Response response = decode_response(payload);
    EXPECT_EQ(response.id, i + 1);
    ASSERT_TRUE(response.ok);
    ASSERT_EQ(response.results.size(), 1u);
    EXPECT_EQ(response.results[0].status, SolveStatus::kOk);
  }
  ASSERT_TRUE(read_frame(raw.get(), payload));  // the shutdown ack, FIFO-last
  Response ack = decode_response(payload);
  EXPECT_EQ(ack.id, kSolves + 1);
  EXPECT_TRUE(ack.ok);
  EXPECT_FALSE(read_frame(raw.get(), payload));  // then a clean close

  server.wait();  // the verb-initiated shutdown completes on its own
}

TEST(SolveServer, DisconnectCancelsOutstandingWork) {
  SolveServerOptions options;
  options.service.threads = 1;  // one worker: requests queue behind each other
  SolveServer server(std::move(options));

  // Big enough that the lone worker cannot drain the queue in the gap between
  // the client vanishing and the reader thread observing EOF -- the S46 kernel
  // made heavy_instance-sized solves fast enough to lose that race.
  auto slow_instance = [](std::uint64_t seed) {
    return generate_uniform({.jobs = 96, .machines = 4, .horizon = 96,
                             .max_window = 10, .max_work = 8}, seed);
  };

  std::uint64_t cancelled_before =
      obs::Registry::global().snapshot().value("net.cancelled_on_disconnect");
  {
    ScopedFd raw = raw_connect(server.port());
    for (std::uint64_t i = 0; i < 6; ++i) {
      Request request;
      request.id = i + 1;
      request.verb = Verb::kSolve;
      request.instances.push_back(slow_instance(i + 10));
      write_frame(raw.get(), encode_request(request));
    }
    // Wait until the reader has ingested at least one frame, then vanish.
    std::string payload;
    ASSERT_TRUE(read_frame(raw.get(), payload));
  }  // raw closes: the daemon should cancel whatever is still pending

  // The reader notices EOF asynchronously; give it a bounded window (it only
  // needs one scheduling slice) before tearing the server down.
  std::uint64_t cancelled_after = cancelled_before;
  for (int spin = 0; spin < 400 && cancelled_after == cancelled_before; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancelled_after =
        obs::Registry::global().snapshot().value("net.cancelled_on_disconnect");
  }
  // Shutdown completes promptly because the abandoned solves stop at their
  // next checkpoint instead of running to completion.
  server.shutdown();
  EXPECT_GT(cancelled_after, cancelled_before);
}

TEST(SolveServer, ShutdownIsIdempotentAndRejectsLateClients) {
  SolveServer server;
  std::uint16_t port = server.port();
  server.shutdown();
  server.shutdown();  // second call is a no-op
  EXPECT_THROW(SolveClient("127.0.0.1", port), std::runtime_error);
}

// ---- distributed tracing (S47) ---------------------------------------------

/// Attaches `sink` to the global registry for the test's scope.
struct ScopedSink {
  explicit ScopedSink(obs::TraceSink* sink) {
    obs::Registry::global().attach_sink(sink);
  }
  ~ScopedSink() { obs::Registry::global().attach_sink(nullptr); }
};

TEST(SolveServer, TraceLinksClientAndServerSpansAcrossLoopback) {
  obs::MemorySink sink;
  ScopedSink attach(&sink);

  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.solve(small_instance()).ok());
  server.shutdown();  // drain: every server-side span is closed and recorded

  // Loopback means both processes' spans land in the one global sink, which
  // is exactly what lets this test assert the full parent chain: the engine's
  // solve span must be a transitive child of the client's client.solve span,
  // crossing the wire (remote_parent) and the worker handoff (local_parent).
  std::vector<obs::TraceEvent> events = sink.events();
  auto begin_of = [&events](std::string_view label) -> const obs::TraceEvent* {
    for (const obs::TraceEvent& event : events) {
      if (event.kind == obs::EventKind::kSpanBegin && event.label == label) {
        return &event;
      }
    }
    return nullptr;
  };

  const obs::TraceEvent* client_span = begin_of("client.solve");
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(client_span->trace, 0u);  // the client minted a trace id

  const obs::TraceEvent* net_span = begin_of("net.request");
  ASSERT_NE(net_span, nullptr);
  EXPECT_EQ(net_span->trace, client_span->trace);
  // The wire hop: net.request is a root span in the server whose parent lives
  // in the peer process, carried as remote_parent (b stays 0).
  EXPECT_EQ(net_span->b, 0u);
  EXPECT_EQ(net_span->remote_parent, client_span->a);

  const obs::TraceEvent* service_span = begin_of("service.request");
  ASSERT_NE(service_span, nullptr);
  EXPECT_EQ(service_span->trace, client_span->trace);
  // The thread hop: the worker's span re-roots onto the reader's net.request
  // span (local_parent), not the pool's long-lived pool.task wrapper.
  EXPECT_EQ(service_span->b, net_span->a);

  const obs::TraceEvent* engine_span = begin_of("optimal.solve");
  ASSERT_NE(engine_span, nullptr);
  EXPECT_EQ(engine_span->trace, client_span->trace);
  EXPECT_EQ(engine_span->b, service_span->a);
  // Transitivity: optimal.solve -> service.request -> net.request ~> (remote)
  // client.solve, all under one trace id. QED for the S47 acceptance chain.
}

TEST(SolveServer, UntracedRequestsStayUntraced) {
  // No sink: the client must not stamp a trace context into the request, and
  // nothing in the daemon path may crash on the all-zero context.
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.solve(small_instance()).ok());
  json::Value stats = client.stats();
  EXPECT_GE(stats.at("uptime_seconds").as_double(), 0.0);
  server.shutdown();
}

TEST(SolveServer, MetricsVerbReturnsPrometheusText) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  (void)client.solve(small_instance());
  std::string text = client.metrics();
  EXPECT_NE(text.find("# TYPE mpss_net_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mpss_net_requests_total"), std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
  server.shutdown();
}

TEST(SolveServer, StatsReportLatencyPercentilesAfterTracedSolves) {
  SolveServer server;
  SolveClient client("127.0.0.1", server.port());
  (void)client.solve(small_instance());
  (void)client.solve(fractional_instance());
  json::Value stats = client.stats();
  const json::Value* latency = stats.find("latency");
  ASSERT_NE(latency, nullptr);
  const json::Value* request_us = latency->find("net.request_us");
  ASSERT_NE(request_us, nullptr);
  EXPECT_GE(request_us->at("count").as_double(), 2.0);
  EXPECT_GT(request_us->at("p50").as_double(), 0.0);
  EXPECT_LE(request_us->at("p50").as_double(),
            request_us->at("p99").as_double());
  server.shutdown();
}

TEST(SolveServer, SlowLogEmitsOneJsonRecordPerRequest) {
  std::ostringstream log;
  SolveServerOptions options;
  options.slow_ms = 0;  // threshold 0: log every request
  options.request_log = &log;
  SolveServer server(std::move(options));
  SolveClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.solve(small_instance()).ok());
  ASSERT_TRUE(client.solve(small_instance()).ok());  // cache hit
  server.shutdown();

  std::istringstream lines(log.str());
  std::string line;
  std::size_t solves = 0;
  bool saw_cache_hit = false;
  while (std::getline(lines, line)) {
    json::Value record = json::parse(line);  // machine-parseable or bust
    EXPECT_EQ(record.at("event").as_string(), "request");
    if (record.at("verb").as_string() != "solve") continue;
    ++solves;
    EXPECT_EQ(record.at("status").as_string(), "ok");
    EXPECT_EQ(record.at("engine").as_string(), "exact");
    EXPECT_GE(record.at("wall_us").as_double(), 0.0);
    EXPECT_GE(record.at("queue_wait_us").as_double(), 0.0);
    saw_cache_hit = saw_cache_hit || record.at("cache_hit").as_bool();
  }
  EXPECT_EQ(solves, 2u);
  EXPECT_TRUE(saw_cache_hit);  // the second solve was served from cache
  EXPECT_GE(obs::Registry::global().snapshot().value("net.slow_requests"), 2u);
}

}  // namespace
}  // namespace mpss::net
