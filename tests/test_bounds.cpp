// Tests for the closed-form competitive bounds quoted by the paper (S19).

#include "mpss/online/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpss {
namespace {

TEST(Bounds, OaBoundValues) {
  EXPECT_DOUBLE_EQ(oa_competitive_bound(2.0), 4.0);
  EXPECT_DOUBLE_EQ(oa_competitive_bound(3.0), 27.0);
  EXPECT_THROW((void)oa_competitive_bound(1.0), std::invalid_argument);
}

TEST(Bounds, AvrBoundValues) {
  EXPECT_DOUBLE_EQ(avr_single_competitive_bound(2.0), 8.0);    // (4)^2 / 2
  EXPECT_DOUBLE_EQ(avr_multi_competitive_bound(2.0), 9.0);     // + 1
  EXPECT_DOUBLE_EQ(avr_single_competitive_bound(3.0), 108.0);  // 6^3 / 2
  EXPECT_DOUBLE_EQ(avr_multi_competitive_bound(3.0), 109.0);
}

TEST(Bounds, AvrLowerBoundApproachesUpper) {
  // ((2 - delta) * alpha)^alpha / 2 -> (2 alpha)^alpha / 2 as delta -> 0.
  EXPECT_DOUBLE_EQ(avr_lower_bound(2.0, 0.0), avr_single_competitive_bound(2.0));
  EXPECT_LT(avr_lower_bound(2.0, 0.5), avr_single_competitive_bound(2.0));
  EXPECT_THROW((void)avr_lower_bound(2.0, 2.5), std::invalid_argument);
}

TEST(Bounds, DeterministicLowerBoundBelowOaBound) {
  for (double alpha : {1.5, 2.0, 3.0, 5.0}) {
    double lower = deterministic_lower_bound(alpha);
    EXPECT_GT(lower, 0.0);
    EXPECT_LT(lower, oa_competitive_bound(alpha)) << alpha;
  }
  EXPECT_DOUBLE_EQ(deterministic_lower_bound(2.0), std::exp(1.0) / 2.0);
}

TEST(Bounds, BkpBeatsOaForLargeAlpha) {
  // The paper's motivation for the open problem: 2(a/(a-1))e^a grows like e^a,
  // alpha^alpha grows much faster.
  EXPECT_GT(bkp_competitive_bound(2.0), oa_competitive_bound(2.0));  // small alpha: OA wins
  EXPECT_LT(bkp_competitive_bound(8.0), oa_competitive_bound(8.0));  // large alpha: BKP wins
  EXPECT_LT(bkp_competitive_bound(20.0), oa_competitive_bound(20.0));
}

TEST(Bounds, BellNumbersExactPrefix) {
  // B_0..B_10 = 1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975.
  const double expected[] = {1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975};
  for (std::size_t n = 0; n <= 10; ++n) {
    EXPECT_DOUBLE_EQ(bell_number(n), expected[n]) << n;
  }
}

TEST(Bounds, FractionalBellMatchesIntegerBell) {
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_NEAR(bell_number_fractional(static_cast<double>(n)), bell_number(n),
                1e-6 * bell_number(n))
        << n;
  }
}

TEST(Bounds, FractionalBellMonotoneInAlpha) {
  double previous = 0.0;
  for (double alpha = 1.0; alpha <= 6.0; alpha += 0.5) {
    double value = bell_number_fractional(alpha);
    EXPECT_GT(value, previous);
    previous = value;
  }
  EXPECT_DOUBLE_EQ(nonmigratory_approx_bound(3.0), bell_number_fractional(3.0));
}

TEST(Bounds, OrderingOfBoundsMatchesPaperNarrative) {
  // For every alpha: deterministic lower bound <= OA bound <= AVR bound
  // (OA is the stronger algorithm; AVR pays for obliviousness).
  for (double alpha : {1.2, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    EXPECT_LE(deterministic_lower_bound(alpha), oa_competitive_bound(alpha)) << alpha;
    EXPECT_LE(oa_competitive_bound(alpha), avr_multi_competitive_bound(alpha)) << alpha;
  }
}

}  // namespace
}  // namespace mpss
