// Instance as a first-class value (S45): PowerSpec, equality, fingerprints,
// and the canonical JSON codec every text consumer shares.

#include <stdexcept>

#include <gtest/gtest.h>

#include "mpss/core/instance_json.hpp"
#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/solve.hpp"
#include "mpss/workload/generators.hpp"
#include "mpss/workload/traces.hpp"

namespace mpss {
namespace {

Instance small_instance() {
  return Instance({Job{Q(0), Q(8), Q(6)}, Job{Q(2), Q(4), Q(6)},
                   Job{Q(2), Q(4), Q(4)}},
                  2);
}

Instance fractional_instance() {
  return Instance({Job{Q(0), Q(1, 2), Q(2, 3)}, Job{Q(1, 3), Q(5, 6), Q(1, 7)},
                   Job{Q(1, 4), Q(2), Q(3, 2)}},
                  2);
}

// ---- PowerSpec -------------------------------------------------------------

TEST(PowerSpec, DefaultIsCubeAndFingerprintsLikeAlphaThree) {
  PowerSpec spec;
  EXPECT_TRUE(spec.is_default());
  EXPECT_EQ(spec.kind(), PowerSpec::Kind::kDefault);
  // kDefault instantiates P(s) = s^3, so it must hash like alpha(3): the
  // service cache treats "no spec" and "explicit cube" as the same work.
  EXPECT_EQ(spec.fingerprint(), PowerSpec::alpha(3.0).fingerprint());
  EXPECT_NE(spec.fingerprint(), 0u);
}

TEST(PowerSpec, FactoriesValidateEagerly) {
  EXPECT_NO_THROW(PowerSpec::alpha(2.5));
  EXPECT_THROW(PowerSpec::alpha(0.5), std::invalid_argument);
  EXPECT_THROW(PowerSpec::piecewise({}), std::invalid_argument);
  EXPECT_NO_THROW(PowerSpec::cubic_leakage(1.0, 0.5, 0.25));
}

TEST(PowerSpec, InstantiateMatchesTheUnderlyingFunction) {
  auto p = PowerSpec::alpha(2.0).instantiate();
  EXPECT_DOUBLE_EQ(p->power(3.0), 9.0);
  auto leaky = PowerSpec::cubic_leakage(1.0, 0.5, 0.25).instantiate();
  EXPECT_DOUBLE_EQ(leaky->power(2.0), 8.0 + 1.0 + 0.25);
}

TEST(PowerSpec, KindNamesRoundTrip) {
  for (PowerSpec::Kind kind :
       {PowerSpec::Kind::kDefault, PowerSpec::Kind::kAlpha,
        PowerSpec::Kind::kPiecewise, PowerSpec::Kind::kCubicLeakage}) {
    EXPECT_EQ(PowerSpec::kind_from_name(PowerSpec::kind_name(kind)), kind);
  }
  EXPECT_THROW((void)PowerSpec::kind_from_name("nope"), std::invalid_argument);
}

TEST(PowerSpec, EqualityComparesKindAndParameters) {
  EXPECT_EQ(PowerSpec::alpha(2.0), PowerSpec::alpha(2.0));
  EXPECT_NE(PowerSpec::alpha(2.0), PowerSpec::alpha(3.0));
  EXPECT_NE(PowerSpec{}, PowerSpec::alpha(3.0));  // distinct kinds, same P
  EXPECT_EQ(PowerSpec::cubic_leakage(1, 2, 3), PowerSpec::cubic_leakage(1, 2, 3));
}

// ---- Instance value semantics ---------------------------------------------

TEST(InstanceValue, EqualityAndPowerAccessors) {
  Instance a = small_instance();
  Instance b = small_instance();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.power().is_default());

  Instance c = a.with_power(PowerSpec::alpha(2.0));
  EXPECT_NE(a, c);
  EXPECT_EQ(c.power(), PowerSpec::alpha(2.0));
  // with_power leaves jobs and machines untouched.
  EXPECT_EQ(c.size(), a.size());
  EXPECT_EQ(c.machines(), a.machines());
}

TEST(InstanceValue, FingerprintIsStableAndDiscriminates) {
  Instance a = small_instance();
  EXPECT_EQ(a.fingerprint(), small_instance().fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);

  EXPECT_NE(a.fingerprint(), a.with_machines(3).fingerprint());
  EXPECT_NE(a.fingerprint(),
            a.with_power(PowerSpec::alpha(2.0)).fingerprint());
  Instance different_jobs({Job{Q(0), Q(8), Q(6)}, Job{Q(2), Q(4), Q(6)},
                           Job{Q(2), Q(4), Q(5)}},
                          2);
  EXPECT_NE(a.fingerprint(), different_jobs.fingerprint());
}

TEST(InstanceValue, DerivedInstancesCarryThePowerSpec) {
  Instance a = fractional_instance().with_power(PowerSpec::alpha(2.0));
  EXPECT_EQ(a.with_machines(4).power(), PowerSpec::alpha(2.0));
  EXPECT_EQ(a.scaled_to_integral_times().power(), PowerSpec::alpha(2.0));
}

// ---- JSON codec ------------------------------------------------------------

TEST(InstanceJson, RoundTripIsBitExact) {
  Instance original = fractional_instance().with_power(PowerSpec::alpha(2.0));
  Instance decoded = instance_from_json(instance_to_json(original));
  EXPECT_EQ(original, decoded);
  EXPECT_EQ(original.fingerprint(), decoded.fingerprint());
  // Canonical form: serializing the decoded copy reproduces the text.
  EXPECT_EQ(instance_to_json(original), instance_to_json(decoded));
}

TEST(InstanceJson, CanonicalDocumentShape) {
  Instance instance({Job{Q(0), Q(1, 2), Q(2, 3)}}, 2);
  EXPECT_EQ(instance_to_json(instance),
            R"({"mpss_instance":1,"machines":2,"power":{"kind":"default"},)"
            R"("jobs":[["0","1/2","2/3"]]})");
}

TEST(InstanceJson, PowerMemberIsOptionalOnInput) {
  Instance decoded = instance_from_json(
      R"({"mpss_instance":1,"machines":1,"jobs":[["0","1","1"]]})");
  EXPECT_TRUE(decoded.power().is_default());
}

TEST(InstanceJson, EveryPowerKindRoundTrips) {
  std::vector<PowerSpec> specs = {
      PowerSpec{}, PowerSpec::alpha(2.5),
      PowerSpec::piecewise({{0.0, 0.0}, {1.0, 1.0}, {2.0, 8.0}}),
      PowerSpec::cubic_leakage(1.0, 0.5, 0.25)};
  for (const PowerSpec& spec : specs) {
    PowerSpec decoded = power_spec_from_json_value(power_spec_to_json_value(spec));
    EXPECT_EQ(spec, decoded) << spec.name();
  }
}

TEST(InstanceJson, RejectsMalformedDocuments) {
  // Wrong version.
  EXPECT_THROW(instance_from_json(
                   R"({"mpss_instance":2,"machines":1,"jobs":[]})"),
               std::invalid_argument);
  // Missing version.
  EXPECT_THROW(instance_from_json(R"({"machines":1,"jobs":[]})"),
               std::invalid_argument);
  // Zero machines (Instance validation).
  EXPECT_THROW(instance_from_json(
                   R"({"mpss_instance":1,"machines":0,"jobs":[["0","1","1"]]})"),
               std::invalid_argument);
  // Rational with a zero denominator must surface as invalid_argument.
  EXPECT_THROW(instance_from_json(
                   R"({"mpss_instance":1,"machines":1,"jobs":[["0","1/0","1"]]})"),
               std::invalid_argument);
  // Numbers instead of rational strings (doubles are not exact-safe).
  EXPECT_THROW(instance_from_json(
                   R"({"mpss_instance":1,"machines":1,"jobs":[[0,1,1]]})"),
               std::invalid_argument);
  // A job that fails Instance validation (release >= deadline).
  EXPECT_THROW(instance_from_json(
                   R"({"mpss_instance":1,"machines":1,"jobs":[["2","1","1"]]})"),
               std::invalid_argument);
  // Not JSON at all.
  EXPECT_THROW(instance_from_json("release,deadline,work"),
               std::invalid_argument);
}

TEST(InstanceJson, GeneratedInstancesRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Instance original = generate_uniform(
        {.jobs = 12, .machines = 3, .horizon = 20, .max_window = 9,
         .max_work = 7},
        seed);
    Instance decoded = instance_from_json(instance_to_json(original));
    EXPECT_EQ(original, decoded);
  }
}

TEST(InstanceJson, TraceLayerDispatchesOnJsonSuffix) {
  Instance original = fractional_instance().with_power(PowerSpec::alpha(2.0));
  std::string path = testing::TempDir() + "mpss_instance_roundtrip.json";
  save_instance(original, path);  // suffix picks the JSON codec
  EXPECT_EQ(load_instance(path), original);
  // The CSV path has no column for the power spec; JSON is the lossless form.
  std::string csv_path = testing::TempDir() + "mpss_instance_roundtrip.csv";
  save_instance(original, csv_path);
  EXPECT_EQ(load_instance(csv_path).power(), PowerSpec{});
}

// ---- facade integration ----------------------------------------------------

TEST(InstancePower, SolveUsesTheInstanceSpec) {
  Instance cube = small_instance();  // default spec: P(s) = s^3
  Instance square = cube.with_power(PowerSpec::alpha(2.0));
  SolveResult cube_result = solve(cube);
  SolveResult square_result = solve(square);
  ASSERT_TRUE(cube_result.ok());
  ASSERT_TRUE(square_result.ok());
  // Same schedule (power-independent), different measured energy.
  EXPECT_NE(cube_result.energy, square_result.energy);

  // An explicit options.power still overrides the spec (the escape hatch).
  AlphaPower p(3.0);
  SolveOptions options;
  options.power = &p;
  EXPECT_DOUBLE_EQ(solve(square, options).energy, cube_result.energy);
}

TEST(InstancePower, LooseJobsWrapperMatchesInstanceForm) {
  Instance instance = small_instance();
  SolveResult via_instance = solve(instance);
  SolveResult via_jobs = solve(
      {Job{Q(0), Q(8), Q(6)}, Job{Q(2), Q(4), Q(6)}, Job{Q(2), Q(4), Q(4)}}, 2);
  ASSERT_TRUE(via_instance.ok());
  ASSERT_TRUE(via_jobs.ok());
  EXPECT_EQ(via_instance.energy, via_jobs.energy);
}

TEST(InstancePower, LooseJobsWrapperReportsInvalidInstanceAsStatus) {
  // machines == 0 and release >= deadline throw from the Instance constructor;
  // the facade wrapper must convert both to kInvalidInstance + error_detail.
  SolveResult no_machines = solve({Job{Q(0), Q(1), Q(1)}}, 0);
  EXPECT_EQ(no_machines.status, SolveStatus::kInvalidInstance);
  EXPECT_FALSE(no_machines.error_detail.empty());

  SolveResult bad_window = solve({Job{Q(2), Q(1), Q(1)}}, 1);
  EXPECT_EQ(bad_window.status, SolveStatus::kInvalidInstance);
  EXPECT_FALSE(bad_window.error_detail.empty());
}

TEST(InstancePower, ErrorDetailIsEmptyExactlyWhenOk) {
  SolveResult ok = solve(small_instance());
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.error_detail.empty());

  SolveOptions bad;
  bad.lp_grid = 1;  // validate() rejects lp_grid < 2
  bad.engine = Engine::kLp;
  SolveResult invalid = solve(small_instance(), bad);
  EXPECT_EQ(invalid.status, SolveStatus::kInvalidOptions);
  EXPECT_FALSE(invalid.error_detail.empty());
}

}  // namespace
}  // namespace mpss
