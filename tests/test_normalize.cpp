// Tests for the Lemma 2 / Lemma 6 normal-form transformation.

#include "mpss/core/normalize.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Normalize, DetectsConstantIntervalSpeeds) {
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(0), Q(2), Q(4)}}, 1);
  // One machine, two speeds inside the single atomic interval [0,2).
  Schedule mixed(1);
  mixed.add(0, Slice{Q(0), Q(1), Q(2), 0});
  mixed.add(0, Slice{Q(1), Q(2), Q(4), 1});
  EXPECT_FALSE(has_constant_interval_speeds(instance, mixed));

  Schedule constant(1);
  constant.add(0, Slice{Q(0), Q(2), Q(3), 0});
  EXPECT_TRUE(has_constant_interval_speeds(instance, constant));
}

TEST(Normalize, IdentityOnAlreadyNormalSchedules) {
  Instance instance = generate_uniform({.jobs = 8, .machines = 3, .horizon = 12,
                                        .max_window = 6, .max_work = 5}, 2);
  auto optimal = optimal_schedule(instance);
  Schedule normal = lemma2_normal_form(instance, optimal.schedule);
  AlphaPower p(2.5);
  EXPECT_NEAR(normal.energy(p), optimal.schedule.energy(p), 1e-12);
  EXPECT_TRUE(check_schedule(instance, normal).feasible);
  EXPECT_TRUE(has_constant_interval_speeds(instance, normal));
}

TEST(Normalize, RestoresNormalFormAfterMachinePermutation) {
  // Scramble the optimal schedule across machines (feasibility-preserving but
  // order-destroying), then normalize: the normal form must come back.
  Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                       .machines = 3, .horizon = 18,
                                       .burst_window = 4, .max_work = 5}, 7);
  auto optimal = optimal_schedule(instance);

  Schedule scrambled(3);
  for (std::size_t machine = 0; machine < 3; ++machine) {
    for (const Slice& slice : optimal.schedule.machine(machine)) {
      scrambled.add((machine + 1) % 3, slice);  // rotate machines
    }
  }
  ASSERT_TRUE(check_schedule(instance, scrambled).feasible);

  Schedule normal = lemma2_normal_form(instance, scrambled);
  auto report = check_schedule(instance, normal);
  ASSERT_TRUE(report.feasible) << report.violations.front();
  EXPECT_TRUE(has_constant_interval_speeds(instance, normal));
  AlphaPower p(3.0);
  EXPECT_NEAR(normal.energy(p), optimal.schedule.energy(p), 1e-9);
  // Faster machines first: per-interval speeds non-increasing in machine index.
  IntervalDecomposition intervals(instance.jobs());
  for (std::size_t j = 0; j < intervals.count(); ++j) {
    Q midpoint = (intervals.start(j) + intervals.end(j)) / Q(2);
    auto speeds = normal.speeds_at(midpoint);
    for (std::size_t l = 1; l < speeds.size(); ++l) {
      EXPECT_LE(speeds[l], speeds[l - 1]);
    }
  }
}

TEST(Normalize, WorksOnAvrAndOaOutputs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = generate_uniform({.jobs = 9, .machines = 3, .horizon = 14,
                                          .max_window = 7, .max_work = 5}, seed);
    auto avr = avr_schedule(instance);
    auto oa = oa_schedule(instance);
    for (const Schedule* schedule : {&avr.schedule, &oa.schedule}) {
      Schedule normal = lemma2_normal_form(instance, *schedule);
      auto report = check_schedule(instance, normal);
      ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                   << report.violations.front();
      EXPECT_TRUE(has_constant_interval_speeds(instance, normal)) << seed;
      AlphaPower p(2.0);
      EXPECT_NEAR(normal.energy(p), schedule->energy(p), 1e-9) << seed;
    }
  }
}

TEST(Normalize, RejectsTwoSpeedJobs) {
  Instance instance({Job{Q(0), Q(2), Q(3)}}, 1);
  Schedule two_speeds(1);
  two_speeds.add(0, Slice{Q(0), Q(1), Q(1), 0});
  two_speeds.add(0, Slice{Q(1), Q(2), Q(2), 0});
  EXPECT_THROW((void)lemma2_normal_form(instance, two_speeds), std::invalid_argument);
}

TEST(Normalize, RejectsPartialGroups) {
  // One job busy for half the interval: its speed group does not fill a whole
  // processor, so the Lemma 2 form does not exist for this schedule.
  Instance instance({Job{Q(0), Q(2), Q(1)}}, 1);
  Schedule half(1);
  half.add(0, Slice{Q(0), Q(1), Q(1), 0});
  EXPECT_THROW((void)lemma2_normal_form(instance, half), std::invalid_argument);
}

TEST(Normalize, EmptyScheduleStaysEmpty) {
  Instance instance({Job{Q(0), Q(1), Q(0)}}, 2);
  Schedule empty(2);
  Schedule normal = lemma2_normal_form(instance, empty);
  EXPECT_EQ(normal.slice_count(), 0u);
}

}  // namespace
}  // namespace mpss
