// End-to-end CLI tests for tools/mpss_trace: the documented exit-code scheme
// (0 ok / 1 usage / 2 missing file / 3 malformed JSONL), the --report span
// profile, and the --chrome export -- whose output is fully parsed by a
// minimal recursive-descent JSON reader and checked against the Chrome
// trace-event schema (every event needs name/ph/ts/pid/tid).
//
// The binary path arrives via MPSS_TRACE_BIN (set by tests/CMakeLists.txt).

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/workload/generators.hpp"

#ifndef MPSS_TRACE_BIN
#error "MPSS_TRACE_BIN must name the mpss_trace executable"
#endif

namespace mpss {
namespace {

namespace fs = std::filesystem;

/// Runs `mpss_trace <args>` and returns its exit code (-1 if it died oddly).
int run_tool(const std::string& args) {
  std::string command = std::string(MPSS_TRACE_BIN) + " " + args + " >/dev/null 2>&1";
  int status = std::system(command.c_str());
  if (status < 0) return -1;
#ifdef WEXITSTATUS
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  return status;
#endif
}

/// Temp directory shared by the suite, removed at program exit.
fs::path temp_dir() {
  static fs::path dir = [] {
    fs::path d = fs::temp_directory_path() / "mpss_trace_cli_test";
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

/// A real trace: the exact engine over a generated instance, JSONL on disk.
fs::path traced_solve_path() {
  static fs::path path = [] {
    fs::path p = temp_dir() / "solve.jsonl";
    UniformWorkload config;
    config.jobs = 10;
    config.machines = 3;
    Instance instance = generate_uniform(config, 7);
    obs::JsonlSink sink(p.string());
    (void)optimal_schedule(instance, OptimalOptions{}, &sink);
    sink.flush();
    return p;
  }();
  return path;
}

// ---- minimal JSON DOM (what the schema test parses --chrome output with) ---

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v); }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
};

/// Strict recursive-descent JSON parser (throws std::runtime_error on any
/// deviation), small enough to live in the test it serves.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json at byte " + std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      literal("null");
      return JsonValue{nullptr};
    }
    return parse_number();
  }
  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
  }
  JsonValue parse_bool() {
    if (peek() == 't') {
      literal("true");
      return JsonValue{true};
    }
    literal("false");
    return JsonValue{false};
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)])) == 0) {
              fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out += '?';  // decoded value irrelevant to the schema checks
          break;
        }
        default: fail("unknown escape");
      }
    }
  }
  JsonValue parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return JsonValue{std::stod(std::string(text_.substr(start, pos_ - start)))};
    } catch (const std::exception&) {
      fail("bad number");
    }
  }
  JsonValue parse_array() {
    expect('[');
    auto array = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return JsonValue{array};
    for (;;) {
      array->push_back(parse_value());
      skip_ws();
      if (consume(']')) return JsonValue{array};
      expect(',');
    }
  }
  JsonValue parse_object() {
    expect('{');
    auto object = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return JsonValue{object};
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*object)[key] = parse_value();
      skip_ws();
      if (consume('}')) return JsonValue{object};
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- the tests -------------------------------------------------------------

TEST(TraceCli, SummaryModeExitsZeroOnValidTrace) {
  EXPECT_EQ(run_tool(traced_solve_path().string()), 0);
  EXPECT_EQ(run_tool(traced_solve_path().string() + " --csv"), 0);
  EXPECT_EQ(run_tool(traced_solve_path().string() + " --events"), 0);
}

TEST(TraceCli, UsageErrorsExitOne) {
  EXPECT_EQ(run_tool(""), 1);                       // missing positional
  EXPECT_EQ(run_tool("--no-such-flag x.jsonl"), 1); // unknown flag
  EXPECT_EQ(run_tool("--help"), 0);                 // help is a success
  // Multiple positionals are the multi-file merge, not a usage error; these
  // two don't exist, so the missing-file exit code applies.
  EXPECT_EQ(run_tool("a.jsonl b.jsonl"), 2);
}

TEST(TraceCli, MissingFileExitsTwo) {
  EXPECT_EQ(run_tool((temp_dir() / "does_not_exist.jsonl").string()), 2);
}

TEST(TraceCli, MalformedJsonlExitsThree) {
  fs::path bad = temp_dir() / "bad.jsonl";
  std::ofstream(bad) << "this is not json\n";
  EXPECT_EQ(run_tool(bad.string()), 3);

  fs::path truncated = temp_dir() / "truncated.jsonl";
  std::ofstream(truncated) << R"({"seq":0,"kind":"counter","label":"x)" << "\n";
  EXPECT_EQ(run_tool(truncated.string()), 3);
}

TEST(TraceCli, ReportModeRunsAndMentionsTheRootSpan) {
  fs::path out = temp_dir() / "report.txt";
  std::string command = std::string(MPSS_TRACE_BIN) + " " +
                        traced_solve_path().string() + " --report > " +
                        out.string() + " 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::string report = slurp(out);
  EXPECT_NE(report.find("span profile"), std::string::npos) << report;
  EXPECT_NE(report.find("optimal.solve"), std::string::npos) << report;
  EXPECT_NE(report.find("optimal.round"), std::string::npos) << report;
}

TEST(TraceCli, ChromeExportIsValidTraceEventJson) {
  fs::path out = temp_dir() / "chrome.json";
  ASSERT_EQ(run_tool(traced_solve_path().string() + " --chrome=" + out.string()), 0);

  JsonValue root = JsonParser(slurp(out)).parse();  // throws if not valid JSON
  ASSERT_TRUE(root.is_object());
  const JsonObject& top = root.object();
  ASSERT_TRUE(top.contains("traceEvents"));
  ASSERT_TRUE(top.at("traceEvents").is_array());
  const JsonArray& events = top.at("traceEvents").array();
  ASSERT_FALSE(events.empty());

  std::size_t complete = 0;
  for (const JsonValue& value : events) {
    ASSERT_TRUE(value.is_object());
    const JsonObject& event = value.object();
    // Chrome trace-event schema: every event carries name/ph/ts/pid/tid.
    for (const char* key : {"name", "ph", "ts", "pid", "tid"}) {
      ASSERT_TRUE(event.contains(key)) << "missing " << key;
    }
    ASSERT_TRUE(event.at("name").is_string());
    ASSERT_TRUE(event.at("ph").is_string());
    ASSERT_TRUE(event.at("ts").is_number());
    const std::string& ph = event.at("ph").str();
    EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") {
      ++complete;
      ASSERT_TRUE(event.contains("dur"));
      EXPECT_GE(std::get<double>(event.at("dur").v), 0.0);
    }
  }
  // The traced solve opened solve/phase/round spans: they must all be there.
  EXPECT_GE(complete, 3u);
}

TEST(TraceCli, ChromeExportToUnwritablePathFails) {
  EXPECT_NE(run_tool(traced_solve_path().string() +
                     " --chrome=/nonexistent-dir-xyzzy/out.json"),
            0);
}

// ---- multi-file merge (S47) ------------------------------------------------

/// Writes `events` to `name` under the temp dir as JSONL, returning the path.
fs::path write_trace(const std::string& name,
                     const std::vector<obs::TraceEvent>& events) {
  fs::path path = temp_dir() / name;
  std::ofstream out(path);
  for (const obs::TraceEvent& event : events) {
    out << obs::to_jsonl(event) << "\n";
  }
  return path;
}

obs::TraceEvent span_event(obs::EventKind kind, std::string label,
                           std::uint64_t id, std::uint64_t parent,
                           std::uint64_t seq, double t, std::uint64_t trace = 0,
                           std::uint64_t remote_parent = 0) {
  obs::TraceEvent event;
  event.kind = kind;
  event.label = std::move(label);
  event.a = id;
  event.b = parent;
  event.span = parent;
  event.value = kind == obs::EventKind::kSpanEnd ? 0.25 : 0.0;
  event.seq = seq;
  event.t_seconds = t;
  event.trace = trace;
  event.remote_parent = remote_parent;
  return event;
}

TEST(TraceCli, MergedChromeExportResolvesCrossProcessParents) {
  using obs::EventKind;
  constexpr std::uint64_t kTrace = 777;
  // Two synthetic process traces whose span ids DELIBERATELY collide: raw id
  // 1 is client.solve in one file and pool.task in the other. The merge must
  // keep them apart (per-file id namespaces) and still resolve the server's
  // remote parent (rparent=1) to the *client's* span 1, not its own.
  fs::path client = write_trace(
      "merge_client.jsonl",
      {span_event(EventKind::kSpanBegin, "client.solve", 1, 0, 0, 100.0, kTrace),
       span_event(EventKind::kSpanEnd, "client.solve", 1, 0, 1, 100.5, kTrace)});
  fs::path server = write_trace(
      "merge_server.jsonl",
      {span_event(EventKind::kSpanBegin, "pool.task", 1, 0, 0, 99.0),
       span_event(EventKind::kSpanBegin, "net.request", 2, 0, 1, 100.1, kTrace,
                  /*remote_parent=*/1),
       span_event(EventKind::kSpanBegin, "service.request", 3, 2, 2, 100.2,
                  kTrace),
       span_event(EventKind::kSpanEnd, "service.request", 3, 2, 3, 100.3,
                  kTrace),
       span_event(EventKind::kSpanEnd, "net.request", 2, 0, 4, 100.4, kTrace,
                  /*remote_parent=*/1),
       span_event(EventKind::kSpanEnd, "pool.task", 1, 0, 5, 101.0)});

  fs::path out = temp_dir() / "merged.json";
  ASSERT_EQ(run_tool(client.string() + " " + server.string() +
                     " --chrome=" + out.string()),
            0);

  JsonValue root = JsonParser(slurp(out)).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  std::map<std::string, const JsonObject*> by_name;
  for (const JsonValue& value : events) {
    const JsonObject& event = value.object();
    if (event.at("ph").str() == "X") by_name[event.at("name").str()] = &event;
  }
  ASSERT_EQ(by_name.size(), 4u);

  auto field = [](const JsonObject* event, const char* key) {
    return std::get<double>(event->at("args").object().at(key).v);
  };
  auto pid = [](const JsonObject* event) {
    return std::get<double>(event->at("pid").v);
  };

  // File index is the Chrome pid; file 0's ids are untouched (the single-file
  // output stays byte-compatible), file 1's live in a disjoint namespace.
  EXPECT_EQ(pid(by_name.at("client.solve")), 0.0);
  EXPECT_EQ(pid(by_name.at("net.request")), 1.0);
  double client_gid = field(by_name.at("client.solve"), "span");
  EXPECT_EQ(client_gid, 1.0);
  double pool_gid = field(by_name.at("pool.task"), "span");
  EXPECT_NE(pool_gid, client_gid);  // the colliding raw id 1, kept apart

  // The wire hop: net.request's parent resolved to the client's span across
  // files, and the whole request chain carries the trace id.
  EXPECT_EQ(field(by_name.at("net.request"), "parent"), client_gid);
  EXPECT_EQ(field(by_name.at("service.request"), "parent"),
            field(by_name.at("net.request"), "span"));
  EXPECT_EQ(field(by_name.at("net.request"), "trace"), 777.0);
  EXPECT_EQ(field(by_name.at("client.solve"), "trace"), 777.0);
}

TEST(TraceCli, ReportAcceptsMultipleFiles) {
  EXPECT_EQ(run_tool(traced_solve_path().string() + " " +
                     traced_solve_path().string() + " --report"),
            0);
}

TEST(TraceCli, PromModeRendersExpositionText) {
  fs::path out = temp_dir() / "prom.txt";
  std::string command = std::string(MPSS_TRACE_BIN) + " " +
                        traced_solve_path().string() + " --prom > " +
                        out.string() + " 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::string text = slurp(out);
  EXPECT_NE(text.find("# TYPE mpss_"), std::string::npos) << text;
  EXPECT_NE(text.find("_total "), std::string::npos) << text;
  // The traced solve closed spans, so the offline rebuild has span duration
  // histograms too.
  EXPECT_NE(text.find("mpss_span_optimal_solve_us"), std::string::npos) << text;
}

}  // namespace
}  // namespace mpss
