// Unit and property tests for the arbitrary-precision integer substrate (S1).

#include "mpss/util/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
}

TEST(BigInt, ConstructsFromInt64) {
  EXPECT_EQ(BigInt(42).to_string(), "42");
  EXPECT_EQ(BigInt(-42).to_string(), "-42");
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::max()).to_string(),
            "9223372036854775807");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::min()).to_string(),
            "-9223372036854775808");
}

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{1} << 40, -(std::int64_t{1} << 40),
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(BigInt(v).to_int64(), v) << v;
    EXPECT_TRUE(BigInt(v).fits_int64());
  }
}

TEST(BigInt, ToInt64ThrowsWhenTooLarge) {
  BigInt big = BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1);
  EXPECT_FALSE(big.fits_int64());
  EXPECT_THROW((void)big.to_int64(), std::overflow_error);
  // INT64_MIN itself still fits.
  BigInt lowest = BigInt(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(lowest.fits_int64());
  EXPECT_THROW((void)(lowest - BigInt(1)).to_int64(), std::overflow_error);
}

TEST(BigInt, FromStringParsesSignsAndZeros) {
  EXPECT_EQ(BigInt::from_string("123"), BigInt(123));
  EXPECT_EQ(BigInt::from_string("-123"), BigInt(-123));
  EXPECT_EQ(BigInt::from_string("+123"), BigInt(123));
  EXPECT_EQ(BigInt::from_string("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("-0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("000042"), BigInt(42));
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW((void)BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string(" 12"), std::invalid_argument);
}

TEST(BigInt, StringRoundTripOnHugeValue) {
  std::string digits = "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(BigInt::from_string(digits).to_string(), digits);
  EXPECT_EQ(BigInt::from_string("-" + digits).to_string(), "-" + digits);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SubtractionBorrowsAndFlipsSign) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).to_string(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).to_string(), "2");
  BigInt big = BigInt::from_string("10000000000000000000000000");
  EXPECT_EQ((big - big).to_string(), "0");
  EXPECT_EQ((big - BigInt(1) - big).to_string(), "-1");
}

TEST(BigInt, MultiplicationMatchesKnownProduct) {
  BigInt a = BigInt::from_string("123456789123456789");
  BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
  EXPECT_EQ((a * BigInt(0)).to_string(), "0");
  EXPECT_EQ((a * BigInt(-1)).to_string(), "-123456789123456789");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW((void)(BigInt(1) / BigInt(0)), std::domain_error);
  EXPECT_THROW((void)(BigInt(1) % BigInt(0)), std::domain_error);
}

TEST(BigInt, MultiLimbLongDivision) {
  BigInt numerator = BigInt::from_string("121932631356500531347203169112635269");
  BigInt denominator = BigInt::from_string("987654321987654321");
  EXPECT_EQ((numerator / denominator).to_string(), "123456789123456789");
  EXPECT_EQ((numerator % denominator).to_string(), "0");
  EXPECT_EQ(((numerator + BigInt(5)) % denominator).to_string(), "5");
}

TEST(BigInt, DivmodIdentityRandomized) {
  Xoshiro256 rng(7);
  for (int round = 0; round < 500; ++round) {
    BigInt a(rng.uniform_int(-1000000000, 1000000000));
    BigInt b(rng.uniform_int(-1000000, 1000000));
    a = a * BigInt(rng.uniform_int(1, 1000000000));  // widen beyond one limb
    if (b.is_zero()) b = BigInt(1);
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.abs() < b.abs());
    // C++ semantics: remainder carries the dividend's sign.
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigInt, KnuthDivisionAddBackCase) {
  // Divisor with top limb just below 2^32 exercises the qhat correction path.
  BigInt numerator = BigInt::from_string("340282366920938463463374607431768211455");
  BigInt denominator = BigInt::from_string("18446744073709551615");
  auto [q, r] = BigInt::divmod(numerator, denominator);
  EXPECT_EQ(q * denominator + r, numerator);
  EXPECT_EQ(q.to_string(), "18446744073709551617");
  EXPECT_EQ(r.to_string(), "0");
}

TEST(BigInt, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::from_string("4294967296"));
  EXPECT_GT(BigInt::from_string("-1"), BigInt::from_string("-4294967296"));
  EXPECT_EQ(BigInt(5), BigInt::from_string("5"));
}

TEST(BigInt, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).to_int64(), 0);
  EXPECT_EQ(BigInt::gcd(BigInt::from_string("123456789123456789"),
                        BigInt::from_string("987654321987654321"))
                .to_string(),
            "9000000009");
}

TEST(BigInt, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(1000).to_double(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-1000).to_double(), -1000.0);
  EXPECT_NEAR(BigInt::from_string("1000000000000000000000").to_double(), 1e21, 1e7);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt::from_string("4294967296").bit_length(), 33u);
}

TEST(BigInt, HashDistinguishesSign) {
  EXPECT_NE(BigInt(5).hash(), BigInt(-5).hash());
  EXPECT_EQ(BigInt(5).hash(), BigInt(5).hash());
}

TEST(BigInt, RingAxiomsRandomized) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 300; ++round) {
    BigInt a(rng.uniform_int(-1'000'000'000'000, 1'000'000'000'000));
    BigInt b(rng.uniform_int(-1'000'000'000'000, 1'000'000'000'000));
    BigInt c(rng.uniform_int(-1'000'000'000'000, 1'000'000'000'000));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + (-a), BigInt(0));
  }
}

}  // namespace
}  // namespace mpss
