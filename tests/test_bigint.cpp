// Unit and property tests for the arbitrary-precision integer substrate (S1).

#include "mpss/util/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "mpss/util/numeric_counters.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
}

TEST(BigInt, ConstructsFromInt64) {
  EXPECT_EQ(BigInt(42).to_string(), "42");
  EXPECT_EQ(BigInt(-42).to_string(), "-42");
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::max()).to_string(),
            "9223372036854775807");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::min()).to_string(),
            "-9223372036854775808");
}

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{1} << 40, -(std::int64_t{1} << 40),
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(BigInt(v).to_int64(), v) << v;
    EXPECT_TRUE(BigInt(v).fits_int64());
  }
}

TEST(BigInt, ToInt64ThrowsWhenTooLarge) {
  BigInt big = BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1);
  EXPECT_FALSE(big.fits_int64());
  EXPECT_THROW((void)big.to_int64(), std::overflow_error);
  // INT64_MIN itself still fits.
  BigInt lowest = BigInt(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(lowest.fits_int64());
  EXPECT_THROW((void)(lowest - BigInt(1)).to_int64(), std::overflow_error);
}

TEST(BigInt, FromStringParsesSignsAndZeros) {
  EXPECT_EQ(BigInt::from_string("123"), BigInt(123));
  EXPECT_EQ(BigInt::from_string("-123"), BigInt(-123));
  EXPECT_EQ(BigInt::from_string("+123"), BigInt(123));
  EXPECT_EQ(BigInt::from_string("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("-0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("000042"), BigInt(42));
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW((void)BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("12a3"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string(" 12"), std::invalid_argument);
}

TEST(BigInt, StringRoundTripOnHugeValue) {
  std::string digits = "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(BigInt::from_string(digits).to_string(), digits);
  EXPECT_EQ(BigInt::from_string("-" + digits).to_string(), "-" + digits);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SubtractionBorrowsAndFlipsSign) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).to_string(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).to_string(), "2");
  BigInt big = BigInt::from_string("10000000000000000000000000");
  EXPECT_EQ((big - big).to_string(), "0");
  EXPECT_EQ((big - BigInt(1) - big).to_string(), "-1");
}

TEST(BigInt, MultiplicationMatchesKnownProduct) {
  BigInt a = BigInt::from_string("123456789123456789");
  BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
  EXPECT_EQ((a * BigInt(0)).to_string(), "0");
  EXPECT_EQ((a * BigInt(-1)).to_string(), "-123456789123456789");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW((void)(BigInt(1) / BigInt(0)), std::domain_error);
  EXPECT_THROW((void)(BigInt(1) % BigInt(0)), std::domain_error);
}

TEST(BigInt, MultiLimbLongDivision) {
  BigInt numerator = BigInt::from_string("121932631356500531347203169112635269");
  BigInt denominator = BigInt::from_string("987654321987654321");
  EXPECT_EQ((numerator / denominator).to_string(), "123456789123456789");
  EXPECT_EQ((numerator % denominator).to_string(), "0");
  EXPECT_EQ(((numerator + BigInt(5)) % denominator).to_string(), "5");
}

TEST(BigInt, DivmodIdentityRandomized) {
  Xoshiro256 rng(7);
  for (int round = 0; round < 500; ++round) {
    BigInt a(rng.uniform_int(-1000000000, 1000000000));
    BigInt b(rng.uniform_int(-1000000, 1000000));
    a = a * BigInt(rng.uniform_int(1, 1000000000));  // widen beyond one limb
    if (b.is_zero()) b = BigInt(1);
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.abs() < b.abs());
    // C++ semantics: remainder carries the dividend's sign.
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST(BigInt, KnuthDivisionAddBackCase) {
  // Divisor with top limb just below 2^32 exercises the qhat correction path.
  BigInt numerator = BigInt::from_string("340282366920938463463374607431768211455");
  BigInt denominator = BigInt::from_string("18446744073709551615");
  auto [q, r] = BigInt::divmod(numerator, denominator);
  EXPECT_EQ(q * denominator + r, numerator);
  EXPECT_EQ(q.to_string(), "18446744073709551617");
  EXPECT_EQ(r.to_string(), "0");
}

TEST(BigInt, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::from_string("4294967296"));
  EXPECT_GT(BigInt::from_string("-1"), BigInt::from_string("-4294967296"));
  EXPECT_EQ(BigInt(5), BigInt::from_string("5"));
}

TEST(BigInt, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).to_int64(), 0);
  EXPECT_EQ(BigInt::gcd(BigInt::from_string("123456789123456789"),
                        BigInt::from_string("987654321987654321"))
                .to_string(),
            "9000000009");
}

TEST(BigInt, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(1000).to_double(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-1000).to_double(), -1000.0);
  EXPECT_NEAR(BigInt::from_string("1000000000000000000000").to_double(), 1e21, 1e7);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt::from_string("4294967296").bit_length(), 33u);
}

TEST(BigInt, HashDistinguishesSign) {
  EXPECT_NE(BigInt(5).hash(), BigInt(-5).hash());
  EXPECT_EQ(BigInt(5).hash(), BigInt(5).hash());
}

TEST(BigInt, SmallValuesLiveInline) {
  EXPECT_TRUE(BigInt().is_small());
  EXPECT_TRUE(BigInt(42).is_small());
  EXPECT_TRUE(BigInt(std::numeric_limits<std::int64_t>::max()).is_small());
  EXPECT_TRUE(BigInt(std::numeric_limits<std::int64_t>::min()).is_small());
  EXPECT_EQ(BigInt(-7).small_value(), -7);
  // One past int64: promoted.
  BigInt past_max = BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1);
  EXPECT_FALSE(past_max.is_small());
  // ... and coming back into range demotes to the inline representation.
  BigInt back = past_max - BigInt(1);
  EXPECT_TRUE(back.is_small());
  EXPECT_EQ(back.small_value(), std::numeric_limits<std::int64_t>::max());
  BigInt below_min = BigInt(std::numeric_limits<std::int64_t>::min()) - BigInt(1);
  EXPECT_FALSE(below_min.is_small());
  EXPECT_TRUE((below_min + BigInt(1)).is_small());
}

TEST(BigInt, ForceBigIsARepresentationChangeOnly) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{123456789}, -(std::int64_t{1} << 40),
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt small(v);
    BigInt forced(v);
    forced.force_big();
    EXPECT_FALSE(forced.is_small()) << v;
    EXPECT_EQ(small, forced) << v;
    EXPECT_EQ(forced, small) << v;
    EXPECT_EQ(small.hash(), forced.hash()) << v;
    EXPECT_EQ(small.to_string(), forced.to_string()) << v;
    EXPECT_EQ(small <=> forced, std::strong_ordering::equal) << v;
    EXPECT_EQ(forced.to_int64(), v) << v;
    EXPECT_TRUE(forced.fits_int64()) << v;
    EXPECT_EQ(small.bit_length(), forced.bit_length()) << v;
    EXPECT_EQ(small.sign(), forced.sign()) << v;
  }
  // Mixed-representation ordering across distinct values.
  BigInt two(2), three(3);
  three.force_big();
  EXPECT_LT(two, three);
  EXPECT_GT(three, two);
  BigInt minus_two(-2);
  minus_two.force_big();
  EXPECT_LT(minus_two, two);
}

TEST(BigInt, SmallVsForcedLimbPathDifferentialAtInt64Boundary) {
  // The fast path and the limb path must agree operation-for-operation on
  // operands straddling +/-2^63, where the overflow checks decide the route.
  Xoshiro256 rng(2024);
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  auto boundary_operand = [&]() -> std::int64_t {
    switch (rng.uniform_int(0, 5)) {
      case 0: return kMax - rng.uniform_int(0, 3);
      case 1: return kMin + rng.uniform_int(0, 3);
      case 2: return rng.uniform_int(-3, 3);
      case 3: return (std::int64_t{1} << 62) + rng.uniform_int(-2, 2);
      case 4: return -(std::int64_t{1} << 62) + rng.uniform_int(-2, 2);
      default: return rng.uniform_int(kMin / 2, kMax / 2);
    }
  };
  for (int round = 0; round < 2000; ++round) {
    std::int64_t x = boundary_operand();
    std::int64_t y = boundary_operand();
    BigInt a(x), b(y);
    BigInt fa(x), fb(y);
    fa.force_big();
    fb.force_big();

    EXPECT_EQ(a + b, fa + fb) << x << " + " << y;
    EXPECT_EQ(a - b, fa - fb) << x << " - " << y;
    EXPECT_EQ(a * b, fa * fb) << x << " * " << y;
    EXPECT_EQ(a <=> b, fa <=> fb) << x << " <=> " << y;
    EXPECT_EQ(BigInt::gcd(a, b), BigInt::gcd(fa, fb)) << "gcd " << x << "," << y;
    if (y != 0) {
      auto [q_small, r_small] = BigInt::divmod(a, b);
      auto [q_big, r_big] = BigInt::divmod(fa, fb);
      EXPECT_EQ(q_small, q_big) << x << " / " << y;
      EXPECT_EQ(r_small, r_big) << x << " % " << y;
      EXPECT_EQ(q_small * b + r_small, a) << x << " divmod " << y;
    }
    // Mixed representation: small op forced-big and vice versa.
    EXPECT_EQ(a + fb, fa + b) << x << " + " << y;
    EXPECT_EQ(a * fb, fa * b) << x << " * " << y;
  }
}

TEST(BigInt, SmallPathOverflowEdgeCases) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ((BigInt(kMax) + BigInt(kMax)).to_string(), "18446744073709551614");
  EXPECT_EQ((BigInt(kMin) + BigInt(kMin)).to_string(), "-18446744073709551616");
  EXPECT_EQ((BigInt(kMax) - BigInt(kMin)).to_string(), "18446744073709551615");
  EXPECT_EQ((BigInt(kMin) - BigInt(kMax)).to_string(), "-18446744073709551615");
  EXPECT_EQ((BigInt(kMin) * BigInt(kMin)).to_string(),
            "85070591730234615865843651857942052864");
  // INT64_MIN / -1 is the lone divmod overflow.
  auto [q, r] = BigInt::divmod(BigInt(kMin), BigInt(-1));
  EXPECT_EQ(q.to_string(), "9223372036854775808");
  EXPECT_TRUE(r.is_zero());
  EXPECT_FALSE(q.is_small());
  // Negation at the boundary.
  EXPECT_EQ(BigInt(kMin).negated().to_string(), "9223372036854775808");
  EXPECT_EQ(BigInt(kMin).abs().to_string(), "9223372036854775808");
  // gcd involving INT64_MIN magnitudes.
  EXPECT_EQ(BigInt::gcd(BigInt(kMin), BigInt(kMin)).to_string(),
            "9223372036854775808");
  EXPECT_EQ(BigInt::gcd(BigInt(kMin), BigInt(0)).to_string(),
            "9223372036854775808");
}

TEST(BigInt, BinaryGcdU64MatchesEuclid) {
  Xoshiro256 rng(11);
  auto euclid = [](std::uint64_t a, std::uint64_t b) {
    while (b != 0) {
      std::uint64_t r = a % b;
      a = b;
      b = r;
    }
    return a;
  };
  EXPECT_EQ(BigInt::gcd_u64(0, 0), 0u);
  EXPECT_EQ(BigInt::gcd_u64(0, 7), 7u);
  EXPECT_EQ(BigInt::gcd_u64(7, 0), 7u);
  EXPECT_EQ(BigInt::gcd_u64(std::uint64_t{1} << 63, std::uint64_t{1} << 63),
            std::uint64_t{1} << 63);
  for (int round = 0; round < 2000; ++round) {
    std::uint64_t a = rng();
    std::uint64_t b = rng();
    // Mix in shared power-of-two factors, the binary algorithm's special case.
    int shift = static_cast<int>(rng.uniform_int(0, 20));
    a <<= shift;
    b <<= shift;
    EXPECT_EQ(BigInt::gcd_u64(a, b), euclid(a, b)) << a << "," << b;
  }
}

TEST(BigInt, TestForceBigModeReplaysLimbPath) {
  // The global mode promotes at construction and never demotes, so whole
  // expressions run on limbs; values must be unchanged.
  BigInt small_sum = BigInt(123456789) * BigInt(987654321) + BigInt(42);
  EXPECT_TRUE(small_sum.is_small());
  BigInt::set_test_force_big(true);
  BigInt forced_sum = BigInt(123456789) * BigInt(987654321) + BigInt(42);
  EXPECT_FALSE(forced_sum.is_small());
  BigInt::set_test_force_big(false);
  EXPECT_EQ(small_sum, forced_sum);
  EXPECT_EQ(small_sum.to_string(), forced_sum.to_string());
}

TEST(BigInt, CountersObserveSmallHitsAndPromotions) {
  NumericCounters& counters = numeric_counters();
  std::uint64_t hits_before = counters.bigint_small_hits;
  BigInt a = BigInt(1000) + BigInt(2000);
  EXPECT_TRUE(a.is_small());
  EXPECT_GT(counters.bigint_small_hits, hits_before);

  std::uint64_t promotions_before = counters.bigint_promotions;
  BigInt b = BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1);
  EXPECT_FALSE(b.is_small());
  EXPECT_GT(counters.bigint_promotions, promotions_before);
}

TEST(BigInt, RingAxiomsRandomized) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 300; ++round) {
    BigInt a(rng.uniform_int(-1'000'000'000'000, 1'000'000'000'000));
    BigInt b(rng.uniform_int(-1'000'000'000'000, 1'000'000'000'000));
    BigInt c(rng.uniform_int(-1'000'000'000'000, 1'000'000'000'000));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + (-a), BigInt(0));
  }
}

}  // namespace
}  // namespace mpss
