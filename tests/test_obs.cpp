// Observability subsystem (S40): counter/timer primitives, the trace-event
// model with its JSONL encoding, the process-wide registry, and -- the part
// that ties telemetry to the paper -- a differential check that the exact
// engine's trace reproduces the phase/round structure of OptimalResult on
// every corpus instance.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/obs/counters.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/stats.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/thread_pool.hpp"
#include "mpss/workload/traces.hpp"

#ifndef MPSS_DATA_DIR
#error "MPSS_DATA_DIR must point at data/corpus"
#endif

namespace mpss::obs {
namespace {

TEST(Counters, AddSetValueAndMissingReadsZero) {
  Counters counters;
  EXPECT_TRUE(counters.empty());
  EXPECT_EQ(counters.value("never.touched"), 0u);

  counters.add("rounds");             // default delta 1
  counters.add("rounds", 4);
  counters.add("paths", 7);
  EXPECT_EQ(counters.value("rounds"), 5u);
  EXPECT_EQ(counters.value("paths"), 7u);
  EXPECT_EQ(counters.size(), 2u);

  counters.set("rounds", 2);  // gauge semantics overwrite
  EXPECT_EQ(counters.value("rounds"), 2u);

  counters.clear();
  EXPECT_TRUE(counters.empty());
  EXPECT_EQ(counters.value("rounds"), 0u);
}

TEST(Counters, MergeAddsEveryCounterAndItemsAreNameOrdered) {
  Counters a, b;
  a.add("x", 1);
  a.add("y", 2);
  b.add("y", 10);
  b.add("z", 3);
  a.merge(b);
  EXPECT_EQ(a.value("x"), 1u);
  EXPECT_EQ(a.value("y"), 12u);
  EXPECT_EQ(a.value("z"), 3u);

  std::vector<std::string> names;
  for (const auto& [name, value] : a.items()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"x", "y", "z"}));
}

TEST(ScopedTimer, AccumulatesIntoSecondsOnDestruction) {
  double seconds = 0.0;
  {
    ScopedTimer timer(seconds);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(timer.elapsed_seconds(), 0.0);
  }
  EXPECT_GT(seconds, 0.0);
  double first = seconds;
  { ScopedTimer timer(seconds); }  // accumulates, does not overwrite
  EXPECT_GE(seconds, first);
}

TEST(ScopedTimer, CountersFormBumpsNsAndCalls) {
  Counters counters;
  {
    ScopedTimer timer(counters, "plan");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  { ScopedTimer timer(counters, "plan"); }
  EXPECT_EQ(counters.value("plan.calls"), 2u);
  EXPECT_GE(counters.value("plan.ns"), 1'000'000u);  // slept >= 1 ms
}

TEST(ScopedTimer, FreeStandingStopwatchReadsWithoutAccumulating) {
  ScopedTimer stopwatch;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  double early = stopwatch.elapsed_seconds();
  EXPECT_GT(early, 0.0);
  EXPECT_GE(stopwatch.elapsed_seconds(), early);  // keeps running
}

TEST(Trace, KindNamesRoundTrip) {
  for (auto kind : {EventKind::kSolveStart, EventKind::kSolveEnd,
                    EventKind::kPhaseStart, EventKind::kPhaseEnd,
                    EventKind::kFlowRound, EventKind::kCandidateRemoved,
                    EventKind::kSimplexPivot, EventKind::kArrival,
                    EventKind::kPeel, EventKind::kCounter,
                    EventKind::kSpanBegin, EventKind::kSpanEnd}) {
    EXPECT_EQ(event_kind_from_name(event_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)event_kind_from_name("no_such_kind"), std::invalid_argument);
}

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> events;
  events.push_back({EventKind::kSolveStart, "optimal.solve", 12, 4, 0.0, 0, 0.0});
  events.push_back({EventKind::kFlowRound, "optimal.round", 2, 7, 0.875, 1, 1.5});
  // Labels with characters the JSON encoder must escape.
  events.push_back({EventKind::kCounter, "weird \"label\"\\with\n\tescapes", 0, 0,
                    -3.25e-7, 2, 0.0});
  // Multi-byte UTF-8 label (passes through the encoder byte-for-byte) plus a
  // non-zero span id stamped by an enclosing SpanScope.
  events.push_back(
      {EventKind::kCounter, "durée.µs \xE2\x86\x92 ok", 1, 2, 0.5, 3, 0.0, 7});
  events.push_back({EventKind::kSpanBegin, "optimal.phase", 8, 7, 0.0, 4, 3.5, 7});
  events.push_back({EventKind::kSpanEnd, "optimal.phase", 8, 7, 0.25, 5, 3.75, 7});
  events.push_back({EventKind::kSolveEnd, "optimal.solve", 41, 36, 0.125, 6, 2.0});
  return events;
}

TEST(Trace, JsonlRoundTripPreservesEveryField) {
  std::string text;
  for (const TraceEvent& event : sample_events()) text += to_jsonl(event) + "\n";
  EXPECT_EQ(parse_trace_jsonl(std::string_view(text)), sample_events());
}

TEST(Trace, ParserDecodesUnicodeEscapesIntoUtf8) {
  // \u00e9 = é (two UTF-8 bytes), \u2192 = right arrow (three bytes).
  auto events = parse_trace_jsonl(std::string_view(
      R"({"seq":0,"kind":"counter","label":"dur\u00e9e \u2192 ok","a":0,"b":0,"value":0,"t":0})"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "dur\xC3\xA9"  "e \xE2\x86\x92 ok");
}

TEST(Trace, SpanFieldDefaultsToZeroWhenAbsent) {
  auto events = parse_trace_jsonl(std::string_view(
      R"({"seq":0,"kind":"counter","label":"old.schema","a":0,"b":0,"value":0,"t":0})"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span, 0u);
}

TEST(Trace, JsonlRoundTripCarriesTraceAndRemoteParent) {
  TraceEvent event;
  event.kind = EventKind::kSpanBegin;
  event.label = "net.request";
  event.a = 2;
  event.seq = 1;
  event.t_seconds = 1.5;
  // A trace id above 2^53: the JSONL codec must keep u64 precision (a double
  // path would silently round it).
  event.trace = 18347587744294764545ull;
  event.remote_parent = 1;

  std::string line = to_jsonl(event);
  EXPECT_NE(line.find("18347587744294764545"), std::string::npos);
  auto events = parse_trace_jsonl(std::string_view(line));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], event);

  // Pre-S47 streams have neither key; both default to 0.
  auto old = parse_trace_jsonl(std::string_view(
      R"({"seq":0,"kind":"counter","label":"old.schema","a":0,"b":0,"value":0,"t":0})"));
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(old[0].trace, 0u);
  EXPECT_EQ(old[0].remote_parent, 0u);
}

TEST(Trace, ParserSkipsBlankLinesAndIgnoresUnknownKeys) {
  std::string text =
      "\n  \t\n"
      R"({"seq":5,"kind":"peel","label":"avr.peel","a":1,"b":2,"value":0.5,"t":0,"future_key":9})"
      "\n\n";
  auto events = parse_trace_jsonl(std::string_view(text));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kPeel);
  EXPECT_EQ(events[0].label, "avr.peel");
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_DOUBLE_EQ(events[0].value, 0.5);
}

TEST(Trace, MalformedLinesThrow) {
  EXPECT_THROW((void)parse_trace_jsonl(std::string_view("not json")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_trace_jsonl(std::string_view(R"({"kind":"nope"})")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_trace_jsonl(std::string_view(R"({"a":})")),
               std::invalid_argument);
}

TEST(Trace, JsonlSinkWritesParsableStream) {
  std::ostringstream out;
  JsonlSink sink(out);
  for (const TraceEvent& event : sample_events()) sink.record(event);
  sink.flush();
  std::istringstream in(out.str());
  EXPECT_EQ(parse_trace_jsonl(in), sample_events());
}

TEST(Trace, JsonlSinkPathConstructorThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlSink("/nonexistent-dir-xyzzy/trace.jsonl"),
               std::invalid_argument);
}

TEST(Trace, JsonlSinkFlushSurfacesStreamFailure) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.record(sample_events().front());
  EXPECT_TRUE(sink.ok());
  sink.flush();  // healthy stream: no throw
  out.setstate(std::ios::badbit);
  EXPECT_FALSE(sink.ok());
  EXPECT_THROW(sink.flush(), std::runtime_error);
}

TEST(Trace, MemorySinkCountsByKindAndLabel) {
  MemorySink sink;
  for (const TraceEvent& event : sample_events()) sink.record(event);
  EXPECT_EQ(sink.size(), 7u);
  EXPECT_EQ(sink.count(EventKind::kSolveStart), 1u);
  EXPECT_EQ(sink.count(EventKind::kSpanBegin), 1u);
  EXPECT_EQ(sink.count(EventKind::kPhaseEnd), 0u);
  EXPECT_EQ(sink.count_label("optimal.solve"), 2u);
  EXPECT_EQ(sink.count_label("optimal.phase"), 2u);
  EXPECT_EQ(sink.events()[1].b, 7u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Trace, MemorySinkSurvivesConcurrentEmission) {
  MemorySink sink;
  constexpr std::size_t kEvents = 2000;
  parallel_for(kEvents, [&sink](std::size_t i) {
    emit(&sink, EventKind::kCounter, "stress", i);
  }, 4);
  ASSERT_EQ(sink.size(), kEvents);
  // Global sequence numbers must be unique even under contention.
  std::vector<std::uint64_t> seqs;
  for (const TraceEvent& event : sink.events()) seqs.push_back(event.seq);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::unique(seqs.begin(), seqs.end()), seqs.end());
}

TEST(Trace, EmitFallsBackToRegistrySinkAndIsNoOpWithoutOne) {
  Registry::global().attach_sink(nullptr);
  emit(nullptr, EventKind::kCounter, "dropped");  // no sink anywhere: no-op

  MemorySink sink;
  Registry::global().attach_sink(&sink);
  emit(nullptr, EventKind::kCounter, "via.registry", 3, 4, 0.5);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].label, "via.registry");
  EXPECT_EQ(sink.events()[0].a, 3u);

  // NullSink swallows but an explicit sink still wins over the registry one.
  NullSink null;
  emit(&null, EventKind::kCounter, "swallowed");
  EXPECT_EQ(sink.size(), 1u);

  Registry::global().attach_sink(nullptr);
  emit(nullptr, EventKind::kCounter, "dropped.again");
  EXPECT_EQ(sink.size(), 1u);
}

TEST(RegistryCounters, AddMergeSnapshotReset) {
  Registry& registry = Registry::global();
  registry.reset();
  registry.add("test.hits");
  registry.add("test.hits", 2);
  Counters local;
  local.add("test.merged", 5);
  registry.merge(local);
  Counters snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.value("test.hits"), 3u);
  EXPECT_EQ(snapshot.value("test.merged"), 5u);
  registry.reset();
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(RegistryCounters, ResetRewindsSequenceAndSpanIdWells) {
  Registry& registry = Registry::global();
  registry.reset();
  std::uint64_t seq0 = registry.next_seq();
  std::uint64_t span0 = registry.next_span_id();
  (void)registry.next_seq();
  (void)registry.next_span_id();
  registry.reset();
  // The test-isolation contract (registry.hpp): after reset() the id wells
  // restart, so traces are byte-identical across test orderings.
  EXPECT_EQ(registry.next_seq(), seq0);
  EXPECT_EQ(registry.next_span_id(), span0);
  EXPECT_EQ(seq0, 0u);
  EXPECT_EQ(span0, 1u);  // span ids are 1-based; 0 means "no span"
  registry.reset();
}

TEST(RegistryCounters, TraceIdsAreNonZeroUniqueAndProcessStamped) {
  Registry& registry = Registry::global();
  std::uint64_t first = registry.next_trace_id();
  std::uint64_t second = registry.next_trace_id();
  EXPECT_NE(first, 0u);   // 0 means "untraced" on the wire
  EXPECT_NE(first, second);
  // The high 32 bits carry the per-process nonce, so two daemons minting
  // trace ids concurrently cannot collide; within a process they match.
  EXPECT_EQ(first >> 32, second >> 32);
  EXPECT_NE(first >> 32, 0u);
}

TEST(RegistryCounters, ConcurrentAddsAreLossless) {
  Registry& registry = Registry::global();
  registry.reset();
  constexpr std::size_t kAdds = 4000;
  parallel_for(kAdds, [&registry](std::size_t) { registry.add("test.race"); }, 4);
  EXPECT_EQ(registry.snapshot().value("test.race"), kAdds);
  registry.reset();
}

// --- Telemetry differential: the trace must reproduce the paper's phase/round
// structure exactly as OptimalResult reports it, on every corpus instance. ---

std::vector<std::string> corpus_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(MPSS_DATA_DIR)) {
    std::string path = entry.path().string();
    const std::string suffix = ".instance.csv";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(TelemetryDifferential, TraceMatchesPhaseStructureOnCorpus) {
  auto paths = corpus_paths();
  ASSERT_GE(paths.size(), 8u);
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Instance instance = load_instance(path);
    MemorySink sink;
    OptimalResult result = optimal_schedule(instance, OptimalOptions{}, &sink);

    // SolveStats mirrors the result's own structural fields.
    EXPECT_EQ(result.stats.phases, result.phases.size());
    EXPECT_EQ(result.stats.flow_computations, result.flow_computations);
    EXPECT_EQ(result.stats.candidate_removals,
              result.flow_computations - result.phases.size());
    EXPECT_GT(result.stats.wall_seconds, 0.0);

    // flow_computations == sum of per-phase rounds, each phase >= 1 round.
    std::size_t total_rounds = 0;
    for (const PhaseInfo& phase : result.phases) {
      EXPECT_GE(phase.rounds, 1u);
      total_rounds += phase.rounds;
    }
    EXPECT_EQ(total_rounds, result.flow_computations);

    // The trace tells the same story: one kFlowRound per feasibility test
    // (grouped by phase via the `a` payload), one kPhaseEnd per phase, and a
    // kCandidateRemoved for every round that did not close a phase.
    auto events = sink.events();
    EXPECT_EQ(sink.count(EventKind::kSolveStart), 1u);
    EXPECT_EQ(sink.count(EventKind::kSolveEnd), 1u);
    EXPECT_EQ(sink.count(EventKind::kPhaseEnd), result.phases.size());
    EXPECT_EQ(sink.count(EventKind::kFlowRound), result.flow_computations);
    EXPECT_EQ(sink.count(EventKind::kCandidateRemoved),
              result.stats.candidate_removals);
    for (std::size_t i = 0; i < result.phases.size(); ++i) {
      std::size_t rounds_in_trace = 0;
      for (const TraceEvent& event : events) {
        if (event.kind == EventKind::kFlowRound && event.label == "optimal.round" &&
            event.a == i) {
          ++rounds_in_trace;
        }
      }
      EXPECT_EQ(rounds_in_trace, result.phases[i].rounds) << "phase " << i;
    }
  }
}

TEST(TelemetryDifferential, StatsSchemaDocumentedCountersArePresent) {
  Instance instance = load_instance(corpus_paths().front());
  OptimalResult result = optimal_schedule(instance);
  EXPECT_GT(result.stats.counters.value("optimal.intervals"), 0u);
  EXPECT_GT(result.stats.flow_bfs_rounds, 0u);
  EXPECT_GT(result.stats.flow_augmenting_paths, 0u);

  // merge() is field-wise additive (OA aggregates inner solves through it).
  SolveStats sum;
  sum.merge(result.stats);
  sum.merge(result.stats);
  EXPECT_EQ(sum.phases, 2 * result.stats.phases);
  EXPECT_EQ(sum.flow_computations, 2 * result.stats.flow_computations);
  EXPECT_EQ(sum.counters.value("optimal.intervals"),
            2 * result.stats.counters.value("optimal.intervals"));
}

}  // namespace
}  // namespace mpss::obs
