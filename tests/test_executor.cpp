// Tests for the schedule executor (S35): completion semantics, flow times,
// anomaly detection.

#include "mpss/sim/executor.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Executor, SingleSliceCompletion) {
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 1);
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(1), 0});
  auto trace = execute_schedule(instance, schedule);
  ASSERT_TRUE(trace.consistent()) << trace.anomalies.front();
  EXPECT_TRUE(trace.jobs[0].scheduled);
  EXPECT_EQ(trace.jobs[0].first_start, Q(0));
  EXPECT_EQ(trace.jobs[0].completion, Q(4));
  EXPECT_EQ(trace.jobs[0].flow_time, Q(4));
  EXPECT_EQ(trace.makespan, Q(4));
  EXPECT_EQ(trace.machine_busy[0], Q(4));
}

TEST(Executor, CompletionInsideASlice) {
  // Faster than needed: work 4 at speed 2 in a 4-long slice completes at t=2 --
  // but then the slice keeps "running" the job: anomaly.
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 1);
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(2), 0});
  auto trace = execute_schedule(instance, schedule);
  EXPECT_EQ(trace.jobs[0].completion, Q(2));
  EXPECT_FALSE(trace.consistent());  // overshoot reported
}

TEST(Executor, MultiSliceExactCompletion) {
  Instance instance({Job{Q(0), Q(10), Q(5)}}, 2);
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});   // 2 units
  schedule.add(1, Slice{Q(4), Q(6), Q(3, 2), 0});  // completes mid-slice at 4+3/(3/2)=6
  auto trace = execute_schedule(instance, schedule);
  ASSERT_TRUE(trace.consistent()) << trace.anomalies.front();
  EXPECT_EQ(trace.jobs[0].completion, Q(6));
  EXPECT_EQ(trace.jobs[0].first_start, Q(0));
}

TEST(Executor, DetectsUnfinishedWork) {
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 1);
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});  // only 2 of 4
  auto trace = execute_schedule(instance, schedule);
  EXPECT_FALSE(trace.consistent());
  EXPECT_NE(trace.anomalies.front().find("finishes only"), std::string::npos);
}

TEST(Executor, DetectsSelfParallelism) {
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 2);
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(1, Slice{Q(1), Q(3), Q(1), 0});
  auto trace = execute_schedule(instance, schedule);
  EXPECT_FALSE(trace.consistent());
  bool found = false;
  for (const auto& anomaly : trace.anomalies) {
    found |= anomaly.find("simultaneously") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Executor, NeverScheduledPositiveWorkIsAnomalous) {
  Instance instance({Job{Q(0), Q(4), Q(1)}, Job{Q(0), Q(4), Q(0)}}, 1);
  Schedule schedule(1);
  auto trace = execute_schedule(instance, schedule);
  EXPECT_FALSE(trace.consistent());  // job 0 never runs
  EXPECT_FALSE(trace.jobs[1].scheduled);  // zero-work job is fine
  EXPECT_EQ(trace.anomalies.size(), 1u);
}

TEST(Executor, ConsistentOnAllLibrarySchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 15,
                                          .max_window = 7, .max_work = 5}, seed);
    auto opt = optimal_schedule(instance);
    auto trace = execute_schedule(instance, opt.schedule);
    ASSERT_TRUE(trace.consistent()) << seed << ": " << trace.anomalies.front();
    // Completions never exceed deadlines; flow times are positive.
    for (std::size_t k = 0; k < instance.size(); ++k) {
      if (!trace.jobs[k].scheduled) continue;
      EXPECT_LE(trace.jobs[k].completion, instance.job(k).deadline) << seed;
      EXPECT_GT(trace.jobs[k].flow_time.sign(), 0) << seed;
    }
    EXPECT_GT(trace.mean_flow_time(), 0.0);
    EXPECT_LE(Q(0), trace.max_flow_time());
  }
}

TEST(Executor, AvrProcrastinatesIntoTheLastUnitInterval) {
  // AVR schedules delta_i units of every active job in EVERY unit interval of
  // its window -- so each job only completes somewhere inside its final unit
  // interval (deadline - 1, deadline]: maximal procrastination.
  Instance instance = generate_agreeable({.jobs = 8, .machines = 2, .horizon = 14,
                                          .min_window = 2, .max_window = 6,
                                          .max_work = 5}, 3);
  auto avr = avr_schedule(instance);
  auto trace = execute_schedule(instance, avr.schedule);
  ASSERT_TRUE(trace.consistent()) << trace.anomalies.front();
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (trace.jobs[k].scheduled) {
      EXPECT_LE(trace.jobs[k].completion, instance.job(k).deadline) << k;
      EXPECT_LT(instance.job(k).deadline - Q(1), trace.jobs[k].completion) << k;
    }
  }
}

TEST(Executor, EmptyScheduleEmptyInstance) {
  Instance instance({}, 2);
  auto trace = execute_schedule(instance, Schedule(2));
  EXPECT_TRUE(trace.consistent());
  EXPECT_EQ(trace.makespan, Q(0));
  EXPECT_DOUBLE_EQ(trace.mean_flow_time(), 0.0);
}

}  // namespace
}  // namespace mpss
