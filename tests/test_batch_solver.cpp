// Tests for the BatchSolver service layer (S44): concurrent batches agree with
// serial solves bit for bit, the result cache returns identical results, soft
// deadlines and cancellation come back as statuses, and the bounded admission
// queue applies real backpressure.

#include "mpss/service/batch_solver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "mpss/obs/registry.hpp"
#include "mpss/service/fingerprint.hpp"
#include "mpss/util/cancel.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

Instance test_instance(std::uint64_t seed, std::size_t jobs = 10,
                       std::size_t machines = 3) {
  return generate_uniform({.jobs = jobs, .machines = machines, .horizon = 20,
                           .max_window = 8, .max_work = 6}, seed);
}

std::vector<Instance> corpus(std::size_t count) {
  std::vector<Instance> instances;
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    instances.push_back(test_instance(seed));
  }
  return instances;
}

/// Exact schedules are deterministic, so cross-thread agreement can demand
/// bit-identical slice lists, not just equal energies.
void expect_identical_schedules(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.machines(), b.machines());
  for (std::size_t m = 0; m < a.machines(); ++m) {
    auto sa = a.machine(m);
    auto sb = b.machine(m);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i], sb[i]);  // Slice has defaulted operator==
    }
  }
}

TEST(BatchSolver, SolveManyMatchesSerialExactSolvesBitForBit) {
  std::vector<Instance> instances = corpus(12);
  BatchSolver service(BatchSolverOptions{.threads = 4, .queue_capacity = 4,
                                         .cache_capacity = 0});
  std::vector<SolveResult> batch = service.solve_many(instances);
  ASSERT_EQ(batch.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SCOPED_TRACE(i);
    SolveResult serial = solve(instances[i]);
    ASSERT_TRUE(batch[i].ok());
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(batch[i].energy, serial.energy);  // exact engine: no tolerance
    ASSERT_NE(batch[i].exact_schedule(), nullptr);
    expect_identical_schedules(*batch[i].exact_schedule(),
                               *serial.exact_schedule());
  }
}

TEST(BatchSolver, ManyProducerThreadsThroughOneService) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 6;
  BatchSolver service(BatchSolverOptions{.threads = 3, .queue_capacity = 8,
                                         .cache_capacity = 0});
  std::vector<std::vector<double>> energies(kProducers);
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&service, &energies, t] {
      for (std::uint64_t seed = 1; seed <= kPerProducer; ++seed) {
        Submission submission =
            service.submit({test_instance(seed), SolveOptions{}});
        ASSERT_TRUE(submission.accepted());
        energies[t].push_back(submission.future.get().energy);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  // Every producer solved the same seed sequence: identical energy vectors.
  for (std::size_t t = 1; t < kProducers; ++t) {
    EXPECT_EQ(energies[t], energies[0]);
  }
}

TEST(BatchSolver, CacheHitReturnsTheSameResult) {
  Instance instance = test_instance(7);
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 4});
  SolveResult cold = service.submit({instance, SolveOptions{}}).future.get();
  SolveResult warm = service.submit({instance, SolveOptions{}}).future.get();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold.energy, warm.energy);
  expect_identical_schedules(*cold.exact_schedule(), *warm.exact_schedule());

  BatchSolver::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(BatchSolver, CacheEvictsLeastRecentlyUsed) {
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 2});
  std::vector<Instance> instances = corpus(3);
  for (const Instance& instance : instances) {
    (void)service.submit({instance, SolveOptions{}}).future.get();
  }
  // Capacity 2, three distinct keys: the first instance was evicted.
  BatchSolver::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  (void)service.submit({instances[0], SolveOptions{}}).future.get();
  EXPECT_EQ(service.cache_stats().misses, 4u);
}

TEST(BatchSolver, CacheDistinguishesOptions) {
  Instance instance = test_instance(3);
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 8});
  SolveOptions exact;
  SolveOptions fast;
  fast.engine = Engine::kFast;
  (void)service.submit({instance, exact}).future.get();
  (void)service.submit({instance, fast}).future.get();
  BatchSolver::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(BatchSolver, ExpiredDeadlineComesBackAsStatus) {
  // A deadline already in the past fires at the facade's pre-dispatch poll:
  // deterministic regardless of solver speed.
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 4});
  SolveRequest request{test_instance(1, 24, 3), SolveOptions{}};
  request.deadline = CancelToken::Clock::now() - std::chrono::milliseconds(1);
  SolveResult result = service.submit(std::move(request)).future.get();
  EXPECT_EQ(result.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error_detail.empty());
  // Abandoned solves never enter the cache.
  EXPECT_EQ(service.cache_stats().misses, 1u);
  SolveRequest retry{test_instance(1, 24, 3), SolveOptions{}};
  EXPECT_TRUE(service.submit(std::move(retry)).future.get().ok());
  EXPECT_EQ(service.cache_stats().hits, 0u);
}

TEST(BatchSolver, CallerCancellationComesBackAsStatus) {
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 0});
  CancelToken token;
  token.request_cancel();  // fired before the request is even admitted
  SolveRequest request{test_instance(2), SolveOptions{}};
  request.options.cancel = &token;
  SolveResult result = service.submit(std::move(request)).future.get();
  EXPECT_EQ(result.status, SolveStatus::kCancelled);
  EXPECT_FALSE(result.error_detail.empty());
}

TEST(BatchSolver, EngineHonoursMidSolveDeadline) {
  // A deadline that expires mid-run is caught at a phase/round checkpoint in
  // the exact engine. Poll a token directly to pin down the engine-level
  // contract without racing wall clocks against solver speed.
  CancelToken token;
  token.set_deadline(CancelToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.deadline_exceeded());
  SolveOptions options;
  options.cancel = &token;
  SolveResult result = solve(test_instance(1), options);
  EXPECT_EQ(result.status, SolveStatus::kDeadlineExceeded);

  CancelToken cancelled;
  cancelled.request_cancel();
  SolveOptions via_flag;
  via_flag.cancel = &cancelled;
  EXPECT_EQ(solve(test_instance(1), via_flag).status, SolveStatus::kCancelled);
}

TEST(BatchSolver, TrySubmitReportsQueueFull) {
  // One worker, capacity 1: hold the worker hostage with a long-running batch
  // of requests, then try_submit until the queue reports full.
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 1,
                                         .cache_capacity = 0});
  std::vector<Submission> held;
  bool saw_queue_full = false;
  for (int i = 0; i < 64 && !saw_queue_full; ++i) {
    Submission submission =
        service.try_submit({test_instance(1, 16, 2), SolveOptions{}});
    if (submission.status == SubmitStatus::kQueueFull) {
      saw_queue_full = true;
    } else {
      ASSERT_EQ(submission.status, SubmitStatus::kAccepted);
      held.push_back(std::move(submission));
    }
  }
  EXPECT_TRUE(saw_queue_full);
  // Backpressure releases: every accepted request still completes.
  for (Submission& submission : held) {
    EXPECT_TRUE(submission.future.get().ok());
  }
}

TEST(BatchSolver, BlockingSubmitWaitsForSpaceInsteadOfDropping) {
  BatchSolver service(BatchSolverOptions{.threads = 2, .queue_capacity = 2,
                                         .cache_capacity = 0});
  std::vector<Submission> submissions;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Submission submission =
        service.submit({test_instance(seed, 12, 2), SolveOptions{}});
    ASSERT_TRUE(submission.accepted());  // blocks, never kQueueFull
    submissions.push_back(std::move(submission));
  }
  for (Submission& submission : submissions) {
    EXPECT_TRUE(submission.future.get().ok());
  }
}

TEST(BatchSolver, HigherPriorityDispatchesFirst) {
  // Single worker; occupy it, fill the queue with a low-priority and then a
  // high-priority request, and watch the completion order invert admission
  // order.
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 0});
  std::atomic<int> order{0};
  // Occupy the worker long enough to enqueue both probes behind it.
  Submission blocker = service.submit({test_instance(1, 24, 2), SolveOptions{}});
  SolveRequest low{test_instance(2, 6, 2), SolveOptions{}};
  low.priority = 0;
  SolveRequest high{test_instance(3, 6, 2), SolveOptions{}};
  high.priority = 5;
  Submission low_run = service.submit(std::move(low));
  Submission high_run = service.submit(std::move(high));
  std::thread low_watch([&] {
    (void)low_run.future.get();
    order.fetch_add(1);
  });
  (void)high_run.future.get();
  int when_high_done = order.load();
  low_watch.join();
  (void)blocker.future.get();
  // When high finished, low had not (0) -- unless the worker popped low before
  // high was admitted, which the blocker exists to prevent; tolerate the race
  // by asserting "high no later than low".
  EXPECT_LE(when_high_done, 1);
}

TEST(BatchSolver, SubmitAfterShutdownReportsShutdown) {
  BatchSolver service(BatchSolverOptions{.threads = 1, .queue_capacity = 0,
                                         .cache_capacity = 0});
  service.shutdown();
  Submission submission = service.submit({test_instance(1), SolveOptions{}});
  EXPECT_EQ(submission.status, SubmitStatus::kShutdown);
  EXPECT_FALSE(submission.accepted());
  EXPECT_EQ(service.try_submit({test_instance(1), SolveOptions{}}).status,
            SubmitStatus::kShutdown);
}

TEST(BatchSolver, ServiceCountersFlowThroughTheRegistry) {
  obs::Registry::global().reset();
  {
    BatchSolver service(BatchSolverOptions{.threads = 2, .queue_capacity = 0,
                                           .cache_capacity = 8});
    Instance instance = test_instance(5);
    (void)service.submit({instance, SolveOptions{}}).future.get();
    (void)service.submit({instance, SolveOptions{}}).future.get();
  }
  obs::Counters counters = obs::Registry::global().snapshot();
  EXPECT_EQ(counters.value("service.submitted"), 2u);
  EXPECT_EQ(counters.value("service.cache_misses"), 1u);
  EXPECT_EQ(counters.value("service.cache_hits"), 1u);
  obs::HistogramMap histograms = obs::Registry::global().histogram_snapshot();
  auto it = histograms.find("service.queue_wait_us");
  ASSERT_NE(it, histograms.end());
  EXPECT_EQ(it->second.count, 2u);
  obs::Registry::global().reset();
}

TEST(BatchSolver, WorkerArenasWarmUpAcrossRequests) {
  // Each pool worker owns a thread-pooled scratch arena (S46). The first
  // request a worker handles may grow it; every later request of comparable
  // shape must run allocation-free, which execute() records as
  // service.arena_warm_solves. With 2 workers and 12 uncached requests, at
  // most 2 cold solves are excused.
  obs::Registry::global().reset();
  constexpr std::size_t kRequests = 12;
  {
    BatchSolver service(BatchSolverOptions{.threads = 2, .queue_capacity = 0,
                                           .cache_capacity = 0});
    Instance instance = test_instance(5);  // one shape: warm after one solve
    std::vector<Submission> submissions;
    for (std::uint64_t seed = 1; seed <= kRequests; ++seed) {
      submissions.push_back(service.submit({instance, SolveOptions{}}));
    }
    for (Submission& submission : submissions) {
      ASSERT_TRUE(submission.future.get().ok());
    }
  }
  obs::Counters counters = obs::Registry::global().snapshot();
  EXPECT_GE(counters.value("service.arena_warm_solves"), kRequests - 2);
  obs::Registry::global().reset();
}

TEST(Fingerprint, StableAcrossCopiesAndSensitiveToInputs) {
  Instance instance = test_instance(9);
  SolveOptions options;
  auto fp = solve_fingerprint(instance, options);
  ASSERT_TRUE(fp.has_value());
  // Deterministic across instance copies.
  EXPECT_EQ(fp, solve_fingerprint(Instance(instance), SolveOptions{}));
  // Machine count, engine, and knobs all shift the key.
  EXPECT_NE(fp, solve_fingerprint(instance.with_machines(5), options));
  SolveOptions fast;
  fast.engine = Engine::kFast;
  EXPECT_NE(fp, solve_fingerprint(instance, fast));
  SolveOptions grid;
  grid.lp_grid = 9;
  EXPECT_NE(fp, solve_fingerprint(instance, grid));
  // Execution context (trace sink, cancel token) does not shift the key.
  SolveOptions traced;
  CancelToken token;
  traced.cancel = &token;
  EXPECT_EQ(fp, solve_fingerprint(instance, traced));
}

TEST(Fingerprint, PowerFunctionsCarryValueIdentity) {
  Instance instance = test_instance(9);
  AlphaPower cube_a(3.0), cube_b(3.0), square(2.0);
  SolveOptions a, b, c;
  a.power = &cube_a;
  b.power = &cube_b;
  c.power = &square;
  // Same alpha, different objects: same key. Different alpha: different key.
  EXPECT_EQ(solve_fingerprint(instance, a), solve_fingerprint(instance, b));
  EXPECT_NE(solve_fingerprint(instance, a), solve_fingerprint(instance, c));

  // A custom power function without a stable fingerprint is uncacheable.
  class OpaquePower final : public PowerFunction {
   public:
    [[nodiscard]] double power(double speed) const override { return speed; }
    [[nodiscard]] std::string name() const override { return "opaque"; }
  };
  OpaquePower opaque;
  SolveOptions uncacheable;
  uncacheable.power = &opaque;
  EXPECT_FALSE(solve_fingerprint(instance, uncacheable).has_value());
}

TEST(Fingerprint, SubmitStatusNamesAreStable) {
  EXPECT_STREQ(submit_status_name(SubmitStatus::kAccepted), "accepted");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kQueueFull), "queue_full");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kShutdown), "shutdown");
}

TEST(SolveManyFreeFunction, PreservesInputOrder) {
  std::vector<Instance> instances = corpus(6);
  std::vector<SolveResult> results = solve_many(instances, SolveOptions{}, 2);
  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].energy, solve(instances[i]).energy);
  }
}

}  // namespace
}  // namespace mpss
