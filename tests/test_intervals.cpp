// Tests for the atomic-interval decomposition (S5): intervals between sorted
// release/deadline points, the backbone of the paper's flow construction.

#include "mpss/core/intervals.hpp"

#include <gtest/gtest.h>

namespace mpss {
namespace {

std::vector<Job> two_jobs() {
  return {Job{Q(0), Q(4), Q(1)}, Job{Q(2), Q(6), Q(1)}};
}

TEST(Intervals, SplitsAtAllReleasesAndDeadlines) {
  auto jobs = two_jobs();
  IntervalDecomposition iv(jobs);
  // Points {0, 2, 4, 6} -> 3 intervals.
  ASSERT_EQ(iv.count(), 3u);
  EXPECT_EQ(iv.start(0), Q(0));
  EXPECT_EQ(iv.end(0), Q(2));
  EXPECT_EQ(iv.start(1), Q(2));
  EXPECT_EQ(iv.end(1), Q(4));
  EXPECT_EQ(iv.start(2), Q(4));
  EXPECT_EQ(iv.end(2), Q(6));
  EXPECT_EQ(iv.length(1), Q(2));
}

TEST(Intervals, DeduplicatesSharedPoints) {
  std::vector<Job> jobs{Job{Q(0), Q(4), Q(1)}, Job{Q(0), Q(4), Q(1)},
                        Job{Q(4), Q(8), Q(1)}};
  IntervalDecomposition iv(jobs);
  EXPECT_EQ(iv.count(), 2u);
}

TEST(Intervals, ActivePredicateMatchesContainment) {
  auto jobs = two_jobs();
  IntervalDecomposition iv(jobs);
  // Job 0 window [0,4): active in I_0, I_1 only.
  EXPECT_TRUE(iv.active(jobs[0], 0));
  EXPECT_TRUE(iv.active(jobs[0], 1));
  EXPECT_FALSE(iv.active(jobs[0], 2));
  // Job 1 window [2,6): active in I_1, I_2 only.
  EXPECT_FALSE(iv.active(jobs[1], 0));
  EXPECT_TRUE(iv.active(jobs[1], 1));
  EXPECT_TRUE(iv.active(jobs[1], 2));
}

TEST(Intervals, RationalTimePoints) {
  std::vector<Job> jobs{Job{Q(0), Q(1, 2), Q(1)}, Job{Q(1, 3), Q(1), Q(1)}};
  IntervalDecomposition iv(jobs);
  // Points {0, 1/3, 1/2, 1}.
  ASSERT_EQ(iv.count(), 3u);
  EXPECT_EQ(iv.length(0), Q(1, 3));
  EXPECT_EQ(iv.length(1), Q(1, 6));
  EXPECT_EQ(iv.length(2), Q(1, 2));
}

TEST(Intervals, ExtraPointsSplitFurther) {
  auto jobs = two_jobs();
  std::vector<Q> extra{Q(3)};
  IntervalDecomposition iv(jobs, extra);
  // Points {0, 2, 3, 4, 6} -> 4 intervals.
  EXPECT_EQ(iv.count(), 4u);
  EXPECT_EQ(iv.end(1), Q(3));
}

TEST(Intervals, EmptyJobListHasNoIntervals) {
  std::vector<Job> none;
  IntervalDecomposition iv(none);
  EXPECT_EQ(iv.count(), 0u);
}

TEST(Intervals, SinglePointYieldsNoIntervals) {
  // Only extra points, all equal: no span.
  std::vector<Job> none;
  std::vector<Q> extra{Q(5), Q(5)};
  IntervalDecomposition iv(none, extra);
  EXPECT_EQ(iv.count(), 0u);
}

TEST(Intervals, IntervalOfLocatesTimes) {
  auto jobs = two_jobs();
  IntervalDecomposition iv(jobs);
  EXPECT_EQ(iv.interval_of(Q(0)), 0u);
  EXPECT_EQ(iv.interval_of(Q(1)), 0u);
  EXPECT_EQ(iv.interval_of(Q(2)), 1u);  // boundary belongs to the right interval
  EXPECT_EQ(iv.interval_of(Q(7, 2)), 1u);
  EXPECT_EQ(iv.interval_of(Q(5)), 2u);
  EXPECT_THROW((void)iv.interval_of(Q(6)), std::invalid_argument);  // horizon end
  EXPECT_THROW((void)iv.interval_of(Q(-1)), std::invalid_argument);
}

TEST(Intervals, ActiveJobsConstantWithinInterval) {
  // Property: for random instances, a job's activity in I_j equals containment of
  // I_j in its window -- probed at the midpoint.
  std::vector<Job> jobs{Job{Q(0), Q(10), Q(1)}, Job{Q(3), Q(7), Q(1)},
                        Job{Q(5), Q(6), Q(1)}, Job{Q(7), Q(10), Q(1)}};
  IntervalDecomposition iv(jobs);
  for (std::size_t j = 0; j < iv.count(); ++j) {
    Q midpoint = (iv.start(j) + iv.end(j)) / Q(2);
    for (const Job& job : jobs) {
      bool contains_midpoint = job.release <= midpoint && midpoint < job.deadline;
      EXPECT_EQ(iv.active(job, j), contains_midpoint);
    }
  }
}

}  // namespace
}  // namespace mpss
