// Tests for the statistics accumulators used by the experiment harnesses.

#include "mpss/util/stats.hpp"

#include <gtest/gtest.h>

#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-10, 10);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesInterpolate) {
  SampleSet set;
  for (double x : {1.0, 2.0, 3.0, 4.0}) set.add(x);
  EXPECT_DOUBLE_EQ(set.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(set.median(), 2.5);
  EXPECT_DOUBLE_EQ(set.quantile(1.0 / 3.0), 2.0);
  EXPECT_DOUBLE_EQ(set.mean(), 2.5);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 4.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet set;
  set.add(7.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(set.median(), 7.0);
}

TEST(SampleSet, ErrorsOnEmptyOrBadQuantile) {
  SampleSet set;
  EXPECT_THROW((void)set.quantile(0.5), std::invalid_argument);
  EXPECT_THROW((void)set.min(), std::invalid_argument);
  set.add(1.0);
  EXPECT_THROW((void)set.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)set.quantile(1.1), std::invalid_argument);
}

TEST(SampleSet, AddAfterQuantileStillWorks) {
  SampleSet set;
  set.add(3.0);
  set.add(1.0);
  EXPECT_DOUBLE_EQ(set.median(), 2.0);
  set.add(2.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(set.median(), 2.0);
  set.add(100.0);
  EXPECT_DOUBLE_EQ(set.max(), 100.0);
}

}  // namespace
}  // namespace mpss
