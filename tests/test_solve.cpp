// The unified solve() facade (S41): every engine reachable through one entry
// point, agreeing with the per-engine free functions, reporting predictable
// input problems as statuses instead of exceptions, and carrying telemetry.

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/lp/lp_baseline.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/solve.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

Instance test_instance() {
  return generate_uniform({.jobs = 10, .machines = 3, .horizon = 20,
                           .max_window = 8, .max_work = 6}, 42);
}

SolveResult run(const Instance& instance, Engine engine,
                const PowerFunction* p = nullptr) {
  SolveOptions options;
  options.engine = engine;
  options.power = p;
  return solve(instance, options);
}

TEST(Solve, NamesAreStable) {
  EXPECT_STREQ(engine_name(Engine::kExact), "exact");
  EXPECT_STREQ(engine_name(Engine::kFast), "fast");
  EXPECT_STREQ(engine_name(Engine::kOa), "oa");
  EXPECT_STREQ(engine_name(Engine::kAvr), "avr");
  EXPECT_STREQ(engine_name(Engine::kLp), "lp");
  EXPECT_STREQ(solve_status_name(SolveStatus::kOk), "ok");
  EXPECT_STREQ(solve_status_name(SolveStatus::kInvalidInstance),
               "invalid_instance");
  EXPECT_STREQ(solve_status_name(SolveStatus::kInvalidOptions),
               "invalid_options");
  EXPECT_STREQ(solve_status_name(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(solve_status_name(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(solve_status_name(SolveStatus::kCancelled), "cancelled");
  EXPECT_STREQ(solve_status_name(SolveStatus::kDeadlineExceeded),
               "deadline_exceeded");
}

TEST(Solve, EngineNamesRoundTripThroughTheInverseParser) {
  for (Engine engine : {Engine::kExact, Engine::kFast, Engine::kOa, Engine::kAvr,
                        Engine::kLp}) {
    SCOPED_TRACE(engine_name(engine));
    auto parsed = engine_from_name(engine_name(engine));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, engine);
  }
  // Historical CLI alias.
  ASSERT_TRUE(engine_from_name("opt").has_value());
  EXPECT_EQ(*engine_from_name("opt"), Engine::kExact);
  EXPECT_FALSE(engine_from_name("").has_value());
  EXPECT_FALSE(engine_from_name("EXACT").has_value());
  EXPECT_FALSE(engine_from_name("greedy").has_value());
}

TEST(Solve, StatusNamesRoundTripThroughTheInverseParser) {
  for (SolveStatus status :
       {SolveStatus::kOk, SolveStatus::kInvalidInstance,
        SolveStatus::kInvalidOptions, SolveStatus::kInfeasible,
        SolveStatus::kUnbounded, SolveStatus::kCancelled,
        SolveStatus::kDeadlineExceeded}) {
    SCOPED_TRACE(solve_status_name(status));
    auto parsed = solve_status_from_name(solve_status_name(status));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, status);
  }
  EXPECT_FALSE(solve_status_from_name("failed").has_value());
  EXPECT_FALSE(solve_status_from_name("").has_value());
}

TEST(Solve, ViolationsHelperDispatchesOverScheduleVariants) {
  Instance instance = test_instance();
  // Exact schedule -> exact checker.
  SolveResult exact = run(instance, Engine::kExact);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.violations(instance), 0u);
  EXPECT_EQ(exact.violations(instance),
            count_violations(instance, *exact.exact_schedule()));
  // Fast schedule -> tolerance checker.
  SolveResult fast = run(instance, Engine::kFast);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.violations(instance), 0u);
  EXPECT_EQ(fast.violations(instance),
            count_fast_violations(instance, *fast.fast_schedule()));
  // No schedule (LP bound, failed solve) -> 0 by definition.
  SolveResult lp = run(instance, Engine::kLp);
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(lp.violations(instance), 0u);
  SolveOptions bad;
  bad.engine = Engine::kLp;
  bad.lp_grid = 1;
  EXPECT_EQ(solve(instance, bad).violations(instance), 0u);
}

TEST(Solve, ExactEngineReportsNumericSubstrateCounters) {
  SolveResult result = run(test_instance(), Engine::kExact);
  ASSERT_TRUE(result.ok());
  // The exact engine is wall-to-wall Q arithmetic: the small path must carry
  // essentially all of it on a word-sized instance.
  EXPECT_GT(result.stats.counters.value("bigint.small_hits"), 0u);
  EXPECT_GT(result.stats.counters.value("rational.norm_small"), 0u);
  EXPECT_GT(result.stats.counters.value("bigint.small_hits"),
            100 * result.stats.counters.value("bigint.promotions"));
}

TEST(Solve, FacadeTraceKnobWinsOverRegistryDefault) {
  Instance instance = test_instance();
  // SolveOptions::trace wins over the process-wide Registry sink -- the only
  // other level in the (now two-level) precedence chain.
  obs::MemorySink facade_sink, registry_sink;
  obs::Registry::global().attach_sink(&registry_sink);
  SolveOptions options;
  options.engine = Engine::kExact;
  options.trace = &facade_sink;
  ASSERT_TRUE(solve(instance, options).ok());
  obs::Registry::global().attach_sink(nullptr);
  EXPECT_GE(facade_sink.count(obs::EventKind::kSolveStart), 1u);
  EXPECT_EQ(registry_sink.count(obs::EventKind::kSolveStart), 0u);

  // With the knob unset, the Registry default is what the engines see.
  obs::MemorySink fallback_sink;
  obs::Registry::global().attach_sink(&fallback_sink);
  SolveOptions defaulted;
  defaulted.engine = Engine::kAvr;
  ASSERT_TRUE(solve(instance, defaulted).ok());
  obs::Registry::global().attach_sink(nullptr);
  EXPECT_GE(fallback_sink.count(obs::EventKind::kSolveStart), 1u);
}

TEST(Solve, ExactEngineReturnsScheduleAndPhaseTelemetry) {
  Instance instance = test_instance();
  SolveResult result = run(instance, Engine::kExact);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.exact_schedule(), nullptr);
  EXPECT_EQ(result.fast_schedule(), nullptr);
  EXPECT_GT(result.energy, 0.0);
  EXPECT_GE(result.stats.phases, 1u);
  EXPECT_GE(result.stats.flow_computations, result.stats.phases);
  EXPECT_GT(result.stats.flow_bfs_rounds, 0u);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_TRUE(check_schedule(instance, *result.exact_schedule()).feasible);
}

TEST(Solve, FastEngineReturnsFastScheduleMatchingExactStructure) {
  Instance instance = test_instance();
  SolveResult fast = run(instance, Engine::kFast);
  ASSERT_TRUE(fast.ok());
  ASSERT_NE(fast.fast_schedule(), nullptr);
  EXPECT_EQ(fast.exact_schedule(), nullptr);
  EXPECT_GT(fast.energy, 0.0);
  EXPECT_GE(fast.stats.phases, 1u);
  EXPECT_GT(fast.stats.wall_seconds, 0.0);

  // Same algorithm over doubles: phase/round structure agrees with exact here.
  SolveResult exact = run(instance, Engine::kExact);
  EXPECT_EQ(fast.stats.phases, exact.stats.phases);
  EXPECT_EQ(fast.stats.flow_computations, exact.stats.flow_computations);
  EXPECT_NEAR(fast.energy, exact.energy, 1e-6 * exact.energy);
}

TEST(Solve, OaEngineAggregatesInnerSolves) {
  Instance instance = test_instance();
  SolveResult result = run(instance, Engine::kOa);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.exact_schedule(), nullptr);
  EXPECT_GE(result.stats.replans, 1u);
  // Inner exact solves merged in: at least one phase per replanning event.
  EXPECT_GE(result.stats.phases, result.stats.replans);
  EXPECT_GE(result.stats.flow_computations, result.stats.phases);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

TEST(Solve, AvrEngineReportsPeels) {
  Instance instance = test_instance();
  SolveResult result = run(instance, Engine::kAvr);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.exact_schedule(), nullptr);
  EXPECT_GT(result.energy, 0.0);
  EXPECT_GT(result.stats.counters.value("avr.unit_intervals"), 0u);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

TEST(Solve, LpEngineIsAScheduleFreeEnergyBound) {
  Instance instance = test_instance();
  SolveResult lp = run(instance, Engine::kLp);
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(lp.exact_schedule(), nullptr);
  EXPECT_EQ(lp.fast_schedule(), nullptr);
  EXPECT_GT(lp.stats.simplex_pivots, 0u);
  EXPECT_GT(lp.stats.counters.value("lp.variables"), 0u);
  // Discretized-speed LP upper-bounds the true optimum.
  SolveResult exact = run(instance, Engine::kExact);
  EXPECT_GE(lp.energy, exact.energy * (1.0 - 1e-9));
}

TEST(Solve, FacadeEnergyMatchesTheFreeFunctions) {
  Instance instance = test_instance();
  AlphaPower p(2.5);
  EXPECT_DOUBLE_EQ(run(instance, Engine::kExact, &p).energy,
                   optimal_energy(instance, p));
  EXPECT_DOUBLE_EQ(run(instance, Engine::kFast, &p).energy,
                   optimal_schedule_fast(instance).schedule.energy(p));
  EXPECT_DOUBLE_EQ(run(instance, Engine::kOa, &p).energy, oa_energy(instance, p));
  EXPECT_DOUBLE_EQ(run(instance, Engine::kAvr, &p).energy,
                   avr_energy(instance, p));
  EXPECT_DOUBLE_EQ(run(instance, Engine::kLp, &p).energy,
                   lp_baseline(instance, p, 8).energy);
}

TEST(Solve, DefaultPowerIsCube) {
  Instance instance = test_instance();
  AlphaPower cube(3.0);
  EXPECT_DOUBLE_EQ(run(instance, Engine::kExact).energy,
                   run(instance, Engine::kExact, &cube).energy);
}

TEST(Solve, PredictableInputProblemsBecomeStatusesNotThrows) {
  // AVR requires integral release/deadline times.
  Instance fractional(std::vector<Job>{Job{Q(1, 2), Q(3, 2), Q(1)}}, 1);
  SolveOptions avr;
  avr.engine = Engine::kAvr;
  SolveResult rejected = solve(fractional, avr);
  EXPECT_EQ(rejected.status, SolveStatus::kInvalidInstance);
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(rejected.error_detail.empty());
  EXPECT_EQ(rejected.energy, 0.0);
  EXPECT_EQ(rejected.exact_schedule(), nullptr);

  // The LP grid needs at least two speed levels -- an options problem, caught
  // by SolveOptions::validate() before any engine runs.
  SolveOptions lp;
  lp.engine = Engine::kLp;
  lp.lp_grid = 1;
  SolveResult bad_grid = solve(test_instance(), lp);
  EXPECT_EQ(bad_grid.status, SolveStatus::kInvalidOptions);
  EXPECT_FALSE(bad_grid.error_detail.empty());
}

TEST(Solve, InvalidKnobsBecomeStatusesNotThrows) {
  Instance instance = test_instance();
  {
    SolveOptions options;
    options.lp_grid = 1;
    ASSERT_TRUE(options.validate().has_value());
    SolveResult result = solve(instance, options);
    EXPECT_EQ(result.status, SolveStatus::kInvalidOptions);
    EXPECT_FALSE(result.error_detail.empty());
  }
  {
    SolveOptions options;
    options.fast_epsilon = 0.0;
    ASSERT_TRUE(options.validate().has_value());
    EXPECT_EQ(solve(instance, options).status, SolveStatus::kInvalidOptions);
  }
  {
    SolveOptions options;
    options.fast_epsilon = -1e-9;
    EXPECT_EQ(solve(instance, options).status, SolveStatus::kInvalidOptions);
  }
  {
    SolveOptions options;
    options.lp_max_speed_hint = -1.0;
    EXPECT_EQ(solve(instance, options).status, SolveStatus::kInvalidOptions);
  }
  // Defaults validate clean.
  EXPECT_FALSE(SolveOptions{}.validate().has_value());
}

TEST(Solve, LpGridTooLowForTheInstanceIsInfeasible) {
  // Force an absurdly low top speed: the grid cannot carry the workload.
  SolveOptions options;
  options.engine = Engine::kLp;
  options.lp_max_speed_hint = 1e-6;
  SolveResult result = solve(test_instance(), options);
  EXPECT_EQ(result.status, SolveStatus::kInfeasible);
  EXPECT_FALSE(result.error_detail.empty());
}

TEST(Solve, TraceSinkInOptionsSeesTheEngineRun) {
  Instance instance = test_instance();
  for (Engine engine : {Engine::kExact, Engine::kFast, Engine::kOa, Engine::kAvr,
                        Engine::kLp}) {
    SCOPED_TRACE(engine_name(engine));
    obs::MemorySink sink;
    SolveOptions options;
    options.engine = engine;
    options.trace = &sink;
    SolveResult result = solve(instance, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(sink.count(obs::EventKind::kSolveStart), 1u);
    EXPECT_GE(sink.count(obs::EventKind::kSolveEnd), 1u);
  }
}

}  // namespace
}  // namespace mpss
