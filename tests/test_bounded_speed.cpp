// Tests for the speed-bounded extension (S29): flow-based feasibility, the
// minimal-peak-speed identity with the optimal schedule's top phase, and capped
// scheduling.

#include "mpss/ext/bounded_speed.hpp"

#include <gtest/gtest.h>

#include "mpss/core/schedule.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(BoundedSpeed, SingleJobThreshold) {
  // Work 8 in window [0,4): needs speed 2.
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 1);
  EXPECT_TRUE(feasible_with_cap(instance, Q(2)));
  EXPECT_TRUE(feasible_with_cap(instance, Q(3)));
  EXPECT_FALSE(feasible_with_cap(instance, Q(199, 100)));
  EXPECT_EQ(minimal_peak_speed(instance), Q(2));
}

TEST(BoundedSpeed, ParallelismRaisesTheCapRequirement) {
  // 3 unit jobs in [0,1) on 2 machines: minimal cap 3/2, on 3 machines: 1.
  std::vector<Job> jobs(3, Job{Q(0), Q(1), Q(1)});
  Instance two(jobs, 2);
  Instance three(jobs, 3);
  EXPECT_EQ(minimal_peak_speed(two), Q(3, 2));
  EXPECT_EQ(minimal_peak_speed(three), Q(1));
  EXPECT_FALSE(feasible_with_cap(two, Q(7, 5)));
  EXPECT_TRUE(feasible_with_cap(two, Q(3, 2)));
}

TEST(BoundedSpeed, SelfParallelismLimitsBigJobs) {
  // One job of work 4 in [0,2) on 4 machines: extra machines are useless, the
  // job itself needs speed 2 (it cannot run on two processors at once).
  Instance instance({Job{Q(0), Q(2), Q(4)}}, 4);
  EXPECT_FALSE(feasible_with_cap(instance, Q(3, 2)));
  EXPECT_TRUE(feasible_with_cap(instance, Q(2)));
  EXPECT_EQ(minimal_peak_speed(instance), Q(2));
}

TEST(BoundedSpeed, RejectsBadCap) {
  Instance instance({Job{Q(0), Q(1), Q(1)}}, 1);
  EXPECT_THROW((void)feasible_with_cap(instance, Q(0)), std::invalid_argument);
  EXPECT_THROW((void)schedule_with_cap(instance, Q(-1)), std::invalid_argument);
}

TEST(BoundedSpeed, ZeroWorkAlwaysFeasible) {
  Instance instance({Job{Q(0), Q(1), Q(0)}}, 1);
  EXPECT_TRUE(feasible_with_cap(instance, Q(1, 1000)));
  EXPECT_EQ(minimal_peak_speed(instance), Q(0));
}

TEST(BoundedSpeed, MinimalPeakMatchesFlowOracle) {
  // Cross-check the identity "minimal cap == optimal top speed" against the
  // independent flow-based feasibility oracle: feasible at s_1, infeasible just
  // below (exact rational probe).
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Instance instance = generate_uniform({.jobs = 9, .machines = 3, .horizon = 14,
                                          .max_window = 7, .max_work = 6}, seed);
    Q peak = minimal_peak_speed(instance);
    ASSERT_GT(peak.sign(), 0) << seed;
    EXPECT_TRUE(feasible_with_cap(instance, peak)) << seed;
    Q just_below = peak * Q(999, 1000);
    EXPECT_FALSE(feasible_with_cap(instance, just_below)) << seed;
  }
}

TEST(BoundedSpeed, ScheduleWithCapReturnsOptimumOrThrows) {
  Instance instance = generate_bursty({.bursts = 2, .jobs_per_burst = 4,
                                       .machines = 2, .horizon = 12,
                                       .burst_window = 3, .max_work = 5}, 2);
  Q peak = minimal_peak_speed(instance);
  auto result = schedule_with_cap(instance, peak);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  EXPECT_EQ(result.schedule.max_speed(), peak);
  EXPECT_THROW((void)schedule_with_cap(instance, peak * Q(9, 10)),
               std::invalid_argument);
}

TEST(BoundedSpeed, CapMonotonicity) {
  // Feasibility is monotone in the cap.
  Instance instance = generate_laminar({.jobs = 8, .machines = 2, .depth = 3,
                                        .max_work = 6}, 5);
  Q peak = minimal_peak_speed(instance);
  for (int factor = 1; factor <= 4; ++factor) {
    EXPECT_TRUE(feasible_with_cap(instance, peak * Q(factor)));
  }
  EXPECT_FALSE(feasible_with_cap(instance, peak / Q(2)));
}

}  // namespace
}  // namespace mpss
