// Tests for exact step functions and schedule speed profiles (S36), including
// the AVR identity: aggregate AVR(m) speed == total active density Delta_t.

#include "mpss/core/profile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(StepFunction, ZeroFunction) {
  StepFunction zero;
  EXPECT_EQ(zero.at(Q(5)), Q(0));
  EXPECT_EQ(zero.integral(), Q(0));
  EXPECT_EQ(zero.maximum(), Q(0));
  EXPECT_EQ(zero.to_string(), "(zero)");
}

TEST(StepFunction, BasicEvaluation) {
  StepFunction f({{Q(0), Q(2)}, {Q(1), Q(3)}}, Q(4));
  EXPECT_EQ(f.at(Q(-1)), Q(0));
  EXPECT_EQ(f.at(Q(0)), Q(2));
  EXPECT_EQ(f.at(Q(1, 2)), Q(2));
  EXPECT_EQ(f.at(Q(1)), Q(3));     // right-continuous
  EXPECT_EQ(f.at(Q(7, 2)), Q(3));
  EXPECT_EQ(f.at(Q(4)), Q(0));     // half-open support
  EXPECT_EQ(f.integral(), Q(2) + Q(9));
  EXPECT_EQ(f.maximum(), Q(3));
}

TEST(StepFunction, CanonicalizesEqualNeighboursAndZeroEnds) {
  StepFunction padded({{Q(0), Q(0)}, {Q(1), Q(2)}, {Q(2), Q(2)}, {Q(3), Q(0)}}, Q(5));
  StepFunction plain({{Q(1), Q(2)}}, Q(3));
  EXPECT_EQ(padded, plain);
  EXPECT_EQ(padded.breakpoints().size(), 2u);
}

TEST(StepFunction, ValidatesInput) {
  EXPECT_THROW(StepFunction({{Q(2), Q(1)}, {Q(1), Q(1)}}, Q(3)),
               std::invalid_argument);
  EXPECT_THROW(StepFunction({{Q(0), Q(1)}}, Q(0)), std::invalid_argument);
}

TEST(StepFunction, PlusMergesBreakpoints) {
  StepFunction a({{Q(0), Q(1)}}, Q(2));
  StepFunction b({{Q(1), Q(2)}}, Q(3));
  StepFunction sum = a.plus(b);
  EXPECT_EQ(sum.at(Q(1, 2)), Q(1));
  EXPECT_EQ(sum.at(Q(3, 2)), Q(3));
  EXPECT_EQ(sum.at(Q(5, 2)), Q(2));
  EXPECT_EQ(sum.integral(), a.integral() + b.integral());
  // Identity with the zero function.
  EXPECT_EQ(sum.plus(StepFunction()), sum);
  EXPECT_EQ(StepFunction().plus(sum), sum);
}

TEST(StepFunction, PowerIntegralMatchesHandComputation) {
  StepFunction f({{Q(0), Q(2)}}, Q(3));
  EXPECT_NEAR(f.power_integral(2.0), 12.0, 1e-12);
  EXPECT_NEAR(f.power_integral(3.0), 24.0, 1e-12);
}

TEST(Profiles, MachineProfileWithIdleGap) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(2), 0});
  schedule.add(0, Slice{Q(3), Q(4), Q(5), 1});
  StepFunction profile = machine_speed_profile(schedule, 0);
  EXPECT_EQ(profile.at(Q(1, 2)), Q(2));
  EXPECT_EQ(profile.at(Q(2)), Q(0));
  EXPECT_EQ(profile.at(Q(7, 2)), Q(5));
  EXPECT_EQ(profile.integral(), Q(7));
}

TEST(Profiles, AggregateSumsMachines) {
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(1, Slice{Q(1), Q(3), Q(2), 1});
  StepFunction aggregate = aggregate_speed_profile(schedule);
  EXPECT_EQ(aggregate.at(Q(1, 2)), Q(1));
  EXPECT_EQ(aggregate.at(Q(3, 2)), Q(3));
  EXPECT_EQ(aggregate.at(Q(5, 2)), Q(2));
  // Integral equals total work.
  EXPECT_EQ(aggregate.integral(), Q(2) + Q(4));
}

TEST(Profiles, ParallelismCountsBusyMachines) {
  Schedule schedule(3);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(1, Slice{Q(1), Q(3), Q(1), 1});
  schedule.add(2, Slice{Q(1), Q(2), Q(1), 2});
  StepFunction parallelism = parallelism_profile(schedule);
  EXPECT_EQ(parallelism.at(Q(1, 2)), Q(1));
  EXPECT_EQ(parallelism.at(Q(3, 2)), Q(3));
  EXPECT_EQ(parallelism.at(Q(5, 2)), Q(1));
  EXPECT_EQ(parallelism.maximum(), Q(3));
}

TEST(Profiles, AvrAggregateSpeedEqualsDensityProfile) {
  // The defining identity of AVR(m): at any time, the machines together run at
  // exactly the total active density Delta_t (peeled jobs at their own density,
  // the rest summing to Delta'). Exact equality, per unit interval.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 12,
                                          .max_window = 6, .max_work = 5}, seed);
    auto avr = avr_schedule(instance);
    StepFunction aggregate = aggregate_speed_profile(avr.schedule);
    auto densities = avr_density_profile(instance);
    Q start = instance.horizon_start();
    for (std::size_t t = 0; t < densities.size(); ++t) {
      // Probe mid-interval (the wrap may shuffle within the interval, but the
      // aggregate is constant across it).
      Q probe = start + Q(static_cast<std::int64_t>(t)) + Q(1, 2);
      EXPECT_EQ(aggregate.at(probe), densities[t])
          << "seed " << seed << " interval " << t;
    }
  }
}

TEST(Profiles, AggregateIntegralEqualsTotalWorkForAllAlgorithms) {
  Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                       .machines = 3, .horizon = 18,
                                       .burst_window = 4, .max_work = 5}, 5);
  auto opt = optimal_schedule(instance);
  EXPECT_EQ(aggregate_speed_profile(opt.schedule).integral(), instance.total_work());
  auto avr = avr_schedule(instance);
  EXPECT_EQ(aggregate_speed_profile(avr.schedule).integral(), instance.total_work());
}

TEST(Profiles, OptimalMachineZeroIsTheFastest) {
  // Machine 0 hosts the fastest phase everywhere (Lemma 6 discipline): its max
  // speed equals the schedule's max speed.
  Instance instance = generate_laminar({.jobs = 10, .machines = 2, .depth = 3,
                                        .max_work = 6}, 6);
  auto opt = optimal_schedule(instance);
  EXPECT_EQ(machine_speed_profile(opt.schedule, 0).maximum(),
            opt.schedule.max_speed());
}

}  // namespace
}  // namespace mpss
