// Tests for the Theorem 2 potential-function checker (S23): the invariant
// E_OA(t) + Phi(t) <= alpha^alpha * E_OPT(t) must hold at every sampled time on
// every instance -- this is the paper's proof, executed.

#include "mpss/online/potential.hpp"

#include <gtest/gtest.h>

#include "mpss/online/bounds.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Potential, EmptyInstance) {
  Instance instance({}, 2);
  auto trace = oa_potential_trace(instance, 2.0);
  EXPECT_TRUE(trace.invariant_holds);
  EXPECT_TRUE(trace.samples.empty());
}

TEST(Potential, RejectsBadAlpha) {
  Instance instance({Job{Q(0), Q(2), Q(2)}}, 1);
  EXPECT_THROW((void)oa_potential_trace(instance, 1.0), std::invalid_argument);
}

TEST(Potential, SingleJobTrace) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 1);
  auto trace = oa_potential_trace(instance, 2.0);
  EXPECT_TRUE(trace.invariant_holds);
  ASSERT_GE(trace.samples.size(), 4u);
  // At t = 0 nothing has run: Phi = a * s^(a-1) * (W - a*W) < 0, energies 0.
  EXPECT_DOUBLE_EQ(trace.samples.front().oa_energy, 0.0);
  EXPECT_LT(trace.samples.front().potential, 0.0);
  // At the horizon both finished: Phi = 0 and E_OA = E_OPT (no surprises).
  EXPECT_NEAR(trace.final_potential, 0.0, 1e-9);
  EXPECT_NEAR(trace.samples.back().oa_energy, trace.samples.back().opt_energy, 1e-9);
}

TEST(Potential, SurpriseArrivalStaysInsideInvariant) {
  // The classic OA-hurting instance (see test_oa.cpp): a late urgent job.
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(1), Q(2), Q(2)}}, 1);
  auto trace = oa_potential_trace(instance, 2.0);
  EXPECT_TRUE(trace.invariant_holds) << "worst violation " << trace.worst_violation;
  // OA really does consume more than OPT here; the potential absorbs the excess.
  EXPECT_GT(trace.samples.back().oa_energy, trace.samples.back().opt_energy);
  EXPECT_NEAR(trace.final_potential, 0.0, 1e-9);
}

TEST(Potential, InvariantHoldsAcrossWorkloadsAlphasAndMachines) {
  for (double alpha : {1.5, 2.0, 3.0}) {
    for (std::size_t machines : {1u, 2u, 4u}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Instance instance = generate_bursty(
            {.bursts = 3, .jobs_per_burst = 3, .machines = machines,
             .horizon = 18, .burst_window = 4, .max_work = 5}, seed);
        auto trace = oa_potential_trace(instance, alpha, 1e-7);
        EXPECT_TRUE(trace.invariant_holds)
            << "alpha " << alpha << " m " << machines << " seed " << seed
            << " worst " << trace.worst_violation;
        EXPECT_NEAR(trace.final_potential, 0.0, 1e-6);
      }
    }
  }
}

TEST(Potential, SlackEndsAtTheoremTwoGap) {
  // At the horizon, slack = alpha^alpha * E_OPT - E_OA: exactly Theorem 2's
  // statement. Verify consistency with independently computed energies.
  Instance instance = generate_uniform({.jobs = 8, .machines = 2, .horizon = 14,
                                        .max_window = 7, .max_work = 5}, 9);
  const double alpha = 2.0;
  auto trace = oa_potential_trace(instance, alpha);
  ASSERT_FALSE(trace.samples.empty());
  const auto& last = trace.samples.back();
  EXPECT_NEAR(last.slack,
              oa_competitive_bound(alpha) * last.opt_energy - last.oa_energy, 1e-6);
  EXPECT_GE(last.slack, 0.0);
}

TEST(Potential, SamplesAreTimeOrdered) {
  Instance instance = generate_uniform({.jobs = 6, .machines = 2, .horizon = 10,
                                        .max_window = 5, .max_work = 4}, 4);
  auto trace = oa_potential_trace(instance, 2.5);
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    EXPECT_LE(trace.samples[i - 1].time, trace.samples[i].time);
    // Cumulative energies are non-decreasing in time.
    EXPECT_LE(trace.samples[i - 1].oa_energy, trace.samples[i].oa_energy + 1e-12);
    EXPECT_LE(trace.samples[i - 1].opt_energy, trace.samples[i].opt_energy + 1e-12);
  }
}

}  // namespace
}  // namespace mpss
