// Tests for the power-function models.

#include "mpss/core/power.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpss {
namespace {

TEST(AlphaPower, EvaluatesPow) {
  AlphaPower cube(3.0);
  EXPECT_DOUBLE_EQ(cube.power(2.0), 8.0);
  EXPECT_DOUBLE_EQ(cube.power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cube.alpha(), 3.0);
  EXPECT_EQ(cube.name(), "s^3");
}

TEST(AlphaPower, RejectsAlphaAtMostOne) {
  EXPECT_THROW(AlphaPower(1.0), std::invalid_argument);
  EXPECT_THROW(AlphaPower(0.5), std::invalid_argument);
  EXPECT_NO_THROW(AlphaPower(1.0001));
}

TEST(AlphaPower, ConvexityProbe) {
  AlphaPower p(2.5);
  for (double a : {0.5, 1.0, 3.0}) {
    for (double b : {0.1, 2.0, 7.0}) {
      EXPECT_LE(p.power((a + b) / 2.0), (p.power(a) + p.power(b)) / 2.0 + 1e-12);
    }
  }
}

TEST(PiecewiseLinear, InterpolatesAndExtrapolates) {
  PiecewiseLinearPower p({{0.0, 0.0}, {1.0, 1.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(p.power(0.5), 0.5);
  EXPECT_DOUBLE_EQ(p.power(1.5), 2.5);
  EXPECT_DOUBLE_EQ(p.power(3.0), 7.0);  // last slope (3) continues
  EXPECT_DOUBLE_EQ(p.power(0.0), 0.0);
  EXPECT_EQ(p.name(), "piecewise[3]");
}

TEST(PiecewiseLinear, ValidatesShape) {
  using Pt = PiecewiseLinearPower::Point;
  EXPECT_THROW(PiecewiseLinearPower({Pt{0, 0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearPower({Pt{1, 0}, Pt{1, 1}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearPower({Pt{0, 1}, Pt{1, 0}}), std::invalid_argument);
  // Concave (slopes decreasing) is rejected.
  EXPECT_THROW(PiecewiseLinearPower({Pt{0, 0}, Pt{1, 2}, Pt{2, 3}}),
               std::invalid_argument);
}

TEST(CubicPlusLeakage, EvaluatesPolynomial) {
  CubicPlusLeakagePower p(2.0, 3.0, 5.0);
  EXPECT_DOUBLE_EQ(p.power(0.0), 5.0);
  EXPECT_DOUBLE_EQ(p.power(1.0), 10.0);
  EXPECT_DOUBLE_EQ(p.power(2.0), 16.0 + 6.0 + 5.0);
  EXPECT_THROW(CubicPlusLeakagePower(-1.0, 0.0, 0.0), std::invalid_argument);
}

TEST(PowerFunction, PolymorphicUse) {
  AlphaPower alpha(2.0);
  CubicPlusLeakagePower cubic(1.0, 0.0, 0.0);
  const PowerFunction* functions[] = {&alpha, &cubic};
  EXPECT_DOUBLE_EQ(functions[0]->power(3.0), 9.0);
  EXPECT_DOUBLE_EQ(functions[1]->power(3.0), 27.0);
}

}  // namespace
}  // namespace mpss
