// Tests for the ASCII Gantt renderer.

#include "mpss/core/gantt.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find('\n', pos);
    if (next == std::string::npos) next = text.size();
    lines.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return lines;
}

TEST(Gantt, EmptySchedule) {
  Schedule schedule(2);
  EXPECT_EQ(render_gantt(schedule), "(empty schedule)\n");
}

TEST(Gantt, SingleSliceFillsItsSpan) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(2), 7});
  GanttOptions options;
  options.width = 40;
  std::string out = render_gantt(schedule, options);
  auto lines = lines_of(out);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "t=[0, 4)");
  // Machine row is 40 '7' glyphs between pipes.
  EXPECT_EQ(lines[1], "m0 |" + std::string(40, '7') + "|");
  // Speed lane carries the label "2".
  EXPECT_NE(lines[2].find('2'), std::string::npos);
}

TEST(Gantt, IdleRenderedAsDots) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  schedule.add(0, Slice{Q(3), Q(4), Q(1), 1});
  GanttOptions options;
  options.width = 40;
  options.show_speeds = false;
  auto lines = lines_of(render_gantt(schedule, options));
  ASSERT_EQ(lines.size(), 2u);
  // First quarter 0s, middle half dots, last quarter 1s.
  EXPECT_EQ(lines[1].substr(4, 10), std::string(10, '0'));
  EXPECT_EQ(lines[1].substr(14, 20), std::string(20, '.'));
  EXPECT_EQ(lines[1].substr(34, 10), std::string(10, '1'));
}

TEST(Gantt, OneRowPerMachinePlusSpeedLane) {
  Schedule schedule(3);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  auto with_speeds = lines_of(render_gantt(schedule));
  EXPECT_EQ(with_speeds.size(), 1u + 3u * 2u);
  GanttOptions no_speeds;
  no_speeds.show_speeds = false;
  EXPECT_EQ(lines_of(render_gantt(schedule, no_speeds)).size(), 1u + 3u);
}

TEST(Gantt, MicroSlicesStayVisible) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1, 1000), Q(1), 5});
  schedule.add(0, Slice{Q(1), Q(2), Q(1), 6});
  GanttOptions options;
  options.width = 30;
  options.show_speeds = false;
  std::string out = render_gantt(schedule, options);
  EXPECT_NE(out.find('5'), std::string::npos);  // still rendered
}

TEST(Gantt, ExplicitWindowClips) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(10), Q(1), 3});
  GanttOptions options;
  options.width = 20;
  options.window_start = Q(4);
  options.window_end = Q(6);
  options.show_speeds = false;
  auto lines = lines_of(render_gantt(schedule, options));
  EXPECT_EQ(lines[0], "t=[4, 6)");
  EXPECT_EQ(lines[1], "m0 |" + std::string(20, '3') + "|");
}

TEST(Gantt, RejectsNarrowWidth) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  GanttOptions options;
  options.width = 5;
  EXPECT_THROW((void)render_gantt(schedule, options), std::invalid_argument);
}

TEST(Gantt, RendersRealOptimalSchedules) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 3, .horizon = 12,
                                          .max_window = 6, .max_work = 4}, seed);
    auto result = optimal_schedule(instance);
    std::string out = render_gantt(result.schedule);
    auto lines = lines_of(out);
    EXPECT_EQ(lines.size(), 1u + 3u * 2u);
    // Every machine row has exactly width + 5-ish framing chars; all rows align.
    EXPECT_EQ(lines[1].size(), lines[3].size());
    EXPECT_EQ(lines[3].size(), lines[5].size());
  }
}

}  // namespace
}  // namespace mpss
