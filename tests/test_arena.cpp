// Scratch-arena unit tests (S46): alignment, monotonic reuse, fallback-alloc
// accounting, and the per-thread ScopedArena pool the engines and BatchSolver
// workers rely on for allocation-free steady state.

#include "mpss/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

namespace mpss {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto bytes = arena.alloc_array<std::uint8_t>(3);
  auto words = arena.alloc_array<std::uint64_t>(5);
  auto more = arena.alloc_array<std::uint32_t>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) % alignof(std::uint64_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(more.data()) % alignof(std::uint32_t),
            0u);
  // Slices never overlap: writing one leaves the others untouched.
  for (auto& b : bytes) b = 0xAB;
  for (auto& w : words) w = ~std::uint64_t{0};
  for (auto& m : more) m = 0x12345678;
  for (auto& b : bytes) EXPECT_EQ(b, 0xAB);
  for (auto& w : words) EXPECT_EQ(w, ~std::uint64_t{0});
}

TEST(Arena, ZeroByteRequestIsEmptySpan) {
  Arena arena;
  auto empty = arena.alloc_array<std::uint64_t>(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(arena.stats().used_bytes, 0u);
}

TEST(Arena, FillOverloadInitializesEveryElement) {
  Arena arena;
  auto filled = arena.alloc_array<std::size_t>(100, std::size_t{42});
  for (std::size_t v : filled) EXPECT_EQ(v, 42u);
}

TEST(Arena, ResetKeepsCapacityAndCountsReuse) {
  Arena arena;
  (void)arena.alloc_array<std::uint64_t>(1000);
  const std::size_t capacity = arena.stats().capacity_bytes;
  const std::uint64_t fallbacks = arena.stats().fallback_allocs;
  EXPECT_GT(capacity, 0u);
  EXPECT_GT(fallbacks, 0u);
  EXPECT_EQ(arena.stats().reuses, 0u);

  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  EXPECT_EQ(arena.stats().capacity_bytes, capacity);
  EXPECT_EQ(arena.stats().reuses, 1u);

  // The warmed cycle re-allocates the same shape without new heap blocks.
  (void)arena.alloc_array<std::uint64_t>(1000);
  EXPECT_EQ(arena.stats().fallback_allocs, fallbacks);
}

TEST(Arena, OutgrowingCapacityIsCountedAsFallback) {
  Arena arena(256);
  const std::uint64_t initial = arena.stats().fallback_allocs;
  (void)arena.alloc_array<std::uint8_t>(64);
  EXPECT_EQ(arena.stats().fallback_allocs, initial);  // fits the first block
  (void)arena.alloc_array<std::uint8_t>(1 << 20);
  EXPECT_EQ(arena.stats().fallback_allocs, initial + 1);
  // After a reset the coalesced capacity absorbs the same sequence.
  arena.reset();
  const std::uint64_t warmed = arena.stats().fallback_allocs;
  (void)arena.alloc_array<std::uint8_t>(64);
  (void)arena.alloc_array<std::uint8_t>(1 << 20);
  EXPECT_EQ(arena.stats().fallback_allocs, warmed);
}

TEST(Arena, ReleaseDropsCapacity) {
  Arena arena(1024);
  EXPECT_GT(arena.stats().capacity_bytes, 0u);
  arena.release();
  EXPECT_EQ(arena.stats().capacity_bytes, 0u);
  // Still usable afterwards.
  auto again = arena.alloc_array<std::uint32_t>(10, std::uint32_t{7});
  EXPECT_EQ(again[9], 7u);
}

TEST(ScopedArena, SameThreadScopesReuseThePooledArena) {
  Arena* first = nullptr;
  {
    ScopedArena scoped;
    (void)scoped->alloc_array<std::uint64_t>(512);
    first = scoped.get();
    EXPECT_GT(scoped->stats().capacity_bytes, 0u);
  }
  {
    ScopedArena scoped;
    // Same arena object, already warmed: capacity survived the pool round-trip
    // and the rewind was counted.
    EXPECT_EQ(scoped.get(), first);
    EXPECT_GT(scoped->stats().capacity_bytes, 0u);
    EXPECT_GE(scoped->stats().reuses, 1u);
    const std::uint64_t fallbacks = scoped->stats().fallback_allocs;
    (void)scoped->alloc_array<std::uint64_t>(512);
    EXPECT_EQ(scoped->stats().fallback_allocs, fallbacks);
  }
}

TEST(ScopedArena, NestedScopesGetDistinctArenas) {
  ScopedArena outer;
  ScopedArena inner;
  EXPECT_NE(outer.get(), inner.get());
  auto a = outer->alloc_array<std::uint64_t>(4, std::uint64_t{1});
  auto b = inner->alloc_array<std::uint64_t>(4, std::uint64_t{2});
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(b[0], 2u);
}

TEST(ScopedArena, PoolIsPerThread) {
  // Warm this thread's pool, then verify another thread gets a different
  // arena object (no cross-thread sharing to race on).
  Arena* here = nullptr;
  {
    ScopedArena scoped;
    (void)scoped->alloc_array<std::uint64_t>(64);
    here = scoped.get();
  }
  std::promise<Arena*> remote;
  std::thread worker([&remote] {
    ScopedArena scoped;
    (void)scoped->alloc_array<std::uint64_t>(64);
    remote.set_value(scoped.get());
  });
  Arena* there = remote.get_future().get();
  worker.join();
  EXPECT_NE(here, there);
  {
    ScopedArena scoped;  // this thread still reuses its own pooled arena
    EXPECT_EQ(scoped.get(), here);
  }
}

TEST(ScopedArena, ManyThreadsPoolIndependently) {
  // Hammer the pool from several threads at once; under TSan (the obs-tsan CI
  // leg) this is the arena-pooling data-race check.
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        ScopedArena scoped;
        auto slice = scoped->alloc_array<std::uint64_t>(256, std::uint64_t(i));
        ASSERT_EQ(slice[255], static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace mpss
