// Tests for the paper's offline optimal algorithm (Section 2 / Theorem 1).
// The strongest checks are the oracles: YDS equality at m = 1 and the LP baseline
// bracketing at m > 1 (test_lp_baseline.cpp covers the latter).

#include "mpss/core/optimal.hpp"

#include <gtest/gtest.h>

#include "mpss/core/yds.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Optimal, SingleJobRunsAtDensity) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 3);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(2));
  EXPECT_EQ(result.speed_of_job(0), Q(2));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Optimal, EmptyAndZeroWorkInstances) {
  Instance empty({}, 2);
  auto result = optimal_schedule(empty);
  EXPECT_EQ(result.schedule.slice_count(), 0u);
  EXPECT_EQ(result.phases.size(), 0u);

  Instance zero({Job{Q(0), Q(5), Q(0)}, Job{Q(1), Q(2), Q(0)}}, 2);
  auto zero_result = optimal_schedule(zero);
  EXPECT_EQ(zero_result.schedule.slice_count(), 0u);
  EXPECT_EQ(zero_result.speed_of_job(0), Q(0));
  EXPECT_TRUE(check_schedule(zero, zero_result.schedule).feasible);
}

TEST(Optimal, TwoIdenticalJobsTwoMachines) {
  // Each machine takes one job at its density; one phase, speed 1.
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(0), Q(2), Q(2)}}, 2);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(1));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  AlphaPower p(3.0);
  EXPECT_NEAR(result.schedule.energy(p), 4.0, 1e-12);  // 2 machines * 1^3 * 2
}

TEST(Optimal, MoreJobsThanMachinesSharesCapacity) {
  // 3 identical unit-window jobs, 2 machines: uniform speed 3/2 over [0,1).
  Instance instance({Job{Q(0), Q(1), Q(1)}, Job{Q(0), Q(1), Q(1)},
                     Job{Q(0), Q(1), Q(1)}}, 2);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(3, 2));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Optimal, DisjointEqualDensityJobsFormOnePhase) {
  // Same speed, non-overlapping windows -> a single phase at speed 1 even on m=1.
  Instance instance({Job{Q(0), Q(1), Q(1)}, Job{Q(1), Q(2), Q(1)}}, 1);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(1));
  EXPECT_EQ(result.phases[0].jobs.size(), 2u);
}

TEST(Optimal, TwoSpeedLevels) {
  // Dense short job forces a fast phase; the long sparse job forms a slow phase.
  Instance instance({Job{Q(0), Q(6), Q(3)}, Job{Q(2), Q(3), Q(3)}}, 1);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_EQ(result.phases[0].speed, Q(3));
  EXPECT_EQ(result.phases[1].speed, Q(3, 5));
  EXPECT_LT(result.phases[1].speed, result.phases[0].speed);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Optimal, MatchesYdsOnSingleMachine) {
  // Oracle test: for m = 1, both algorithms are optimal, so the energies must be
  // exactly equal (both run each job at one constant rational speed).
  AlphaPower p(2.5);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 1, .horizon = 16,
                                          .max_window = 8, .max_work = 6}, seed);
    auto flow_result = optimal_schedule(instance);
    auto yds_result = yds_schedule(instance);
    ASSERT_TRUE(check_schedule(instance, flow_result.schedule).feasible) << seed;
    EXPECT_NEAR(flow_result.schedule.energy(p), yds_result.schedule.energy(p),
                1e-9 * (1.0 + yds_result.schedule.energy(p)))
        << "seed " << seed;
    // Stronger: per-job speeds agree exactly.
    for (std::size_t k = 0; k < instance.size(); ++k) {
      EXPECT_EQ(flow_result.speed_of_job(k), yds_result.job_speed[k])
          << "seed " << seed << " job " << k;
    }
  }
}

TEST(Optimal, FeasibleAcrossWorkloadFamilies) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<Instance> instances{
        generate_uniform({.jobs = 12, .machines = 3, .horizon = 20,
                          .max_window = 10, .max_work = 8}, seed),
        generate_bursty({.bursts = 3, .jobs_per_burst = 5, .machines = 4,
                         .horizon = 30, .burst_window = 5, .max_work = 6}, seed),
        generate_laminar({.jobs = 12, .machines = 2, .depth = 4, .max_work = 6}, seed),
        generate_agreeable({.jobs = 12, .machines = 3, .horizon = 25,
                            .min_window = 2, .max_window = 8, .max_work = 6}, seed),
        generate_periodic({.tasks = 4, .machines = 3, .hyperperiods = 1,
                           .max_work = 5}, seed),
    };
    for (const Instance& instance : instances) {
      auto result = optimal_schedule(instance);
      auto report = check_schedule(instance, result.schedule);
      ASSERT_TRUE(report.feasible)
          << instance.summary() << " seed " << seed << ": "
          << report.violations.front();
    }
  }
}

TEST(Optimal, EnergyMonotoneInMachineCount) {
  // More processors can only help (the m-machine schedule embeds in m+1).
  AlphaPower p(3.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance base = generate_uniform({.jobs = 10, .machines = 1, .horizon = 15,
                                      .max_window = 8, .max_work = 5}, seed);
    double previous = std::numeric_limits<double>::infinity();
    for (std::size_t m : {1u, 2u, 3u, 5u}) {
      double energy = optimal_energy(base.with_machines(m), p);
      EXPECT_LE(energy, previous * (1 + 1e-12)) << "seed " << seed << " m " << m;
      previous = energy;
    }
  }
}

TEST(Optimal, ManyMachinesGiveEveryJobItsDensity) {
  // With m >= n every job can run on its own processor; optimal speed is its
  // density (lower is impossible: less work than w_k would complete).
  Instance instance({Job{Q(0), Q(4), Q(2)}, Job{Q(1), Q(3), Q(4)}, Job{Q(0), Q(8), Q(1)}},
                    5);
  auto result = optimal_schedule(instance);
  EXPECT_EQ(result.speed_of_job(0), Q(1, 2));
  EXPECT_EQ(result.speed_of_job(1), Q(2));
  EXPECT_EQ(result.speed_of_job(2), Q(1, 8));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Optimal, ParallelBatchClosedForm) {
  // slots * m unit jobs per slot: every machine runs at speed w everywhere.
  for (std::size_t m : {1u, 2u, 4u}) {
    Instance instance = generate_parallel_batch(3, m, 5);
    auto result = optimal_schedule(instance);
    ASSERT_EQ(result.phases.size(), 1u);
    EXPECT_EQ(result.phases[0].speed, Q(5));
    EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
    AlphaPower p(2.0);
    EXPECT_NEAR(result.schedule.energy(p), 25.0 * 3.0 * static_cast<double>(m), 1e-9);
  }
}

TEST(Optimal, PhaseSpeedsStrictlyDecrease) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Instance instance = generate_laminar({.jobs = 15, .machines = 2, .depth = 4,
                                          .max_work = 10}, seed);
    auto result = optimal_schedule(instance);
    for (std::size_t i = 1; i < result.phases.size(); ++i) {
      EXPECT_LT(result.phases[i].speed, result.phases[i - 1].speed) << "seed " << seed;
    }
  }
}

TEST(Optimal, RationalTimesAndWorks) {
  Instance instance({Job{Q(0), Q(1, 2), Q(2, 3)}, Job{Q(1, 3), Q(5, 6), Q(1, 7)}}, 2);
  auto result = optimal_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Optimal, FlowComputationCountIsPolynomial) {
  // Sanity guard: never more than one removal round per job per phase, so at most
  // n + n^2 flow computations overall.
  Instance instance = generate_uniform({.jobs = 20, .machines = 3, .horizon = 30,
                                        .max_window = 12, .max_work = 8}, 5);
  auto result = optimal_schedule(instance);
  EXPECT_LE(result.flow_computations,
            instance.size() * instance.size() + instance.size());
  EXPECT_GE(result.flow_computations, result.phases.size());
}

TEST(Optimal, SpeedOfUnknownJobIsZero) {
  Instance instance({Job{Q(0), Q(1), Q(1)}}, 1);
  auto result = optimal_schedule(instance);
  EXPECT_EQ(result.speed_of_job(17), Q(0));
}

}  // namespace
}  // namespace mpss
