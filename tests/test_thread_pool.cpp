// Tests for the thread pool and parallel_for (sweep substrate S20).

#include "mpss/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpss {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool survives and remains usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitIdleAggregatesMultipleTaskFailures) {
  ThreadPool pool(2);
  for (int i = 0; i < 5; ++i) {
    pool.submit([] { throw std::runtime_error("task failed"); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow";
  } catch (const std::runtime_error& error) {
    // The first message survives and the other four failures are counted,
    // not silently swallowed.
    EXPECT_NE(std::string(error.what()).find("task failed"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("+4 more pool task failures"),
              std::string::npos)
        << error.what();
  }
  // Error state resets: a clean wave reports nothing.
  pool.submit([] {});
  pool.wait_idle();
}

TEST(ThreadPool, WaitIdleRethrowsSingleFailureVerbatim) {
  ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("exact type preserved"); });
  // Exactly one failure: the original exception object, not a wrapper.
  EXPECT_THROW(pool.wait_idle(), std::invalid_argument);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, ManyWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; }, 4);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&order](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential => in order
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      parallel_for(100, [](std::size_t i) {
        if (i == 37) throw std::logic_error("bad index");
      }, 4),
      std::logic_error);
}

TEST(ParallelFor, ResultMatchesSequentialReduction) {
  std::vector<double> values(500);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> out(500);
  parallel_for(500, [&](std::size_t i) { out[i] = values[i] * values[i]; }, 6);
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 500.0 * 501.0 * 1001.0 / 6.0);
}

}  // namespace
}  // namespace mpss
