// Tests for the (discretized) BKP single-processor online algorithm (S14).

#include "mpss/online/bkp.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Bkp, RejectsBadArguments) {
  Instance instance({Job{Q(0), Q(2), Q(2)}}, 2);
  EXPECT_THROW((void)bkp_schedule(instance, 2.0), std::invalid_argument);  // m != 1
  Instance single({Job{Q(0), Q(2), Q(2)}}, 1);
  EXPECT_THROW((void)bkp_schedule(single, 1.0), std::invalid_argument);
  EXPECT_THROW((void)bkp_schedule(single, 2.0, 0), std::invalid_argument);
}

TEST(Bkp, EmptyInstance) {
  Instance instance({}, 1);
  auto result = bkp_schedule(instance, 2.0);
  EXPECT_DOUBLE_EQ(result.energy, 0.0);
  EXPECT_DOUBLE_EQ(result.unfinished_work, 0.0);
}

TEST(Bkp, CompletesWorkWithinDiscretizationError) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 6, .machines = 1, .horizon = 12,
                                          .max_window = 6, .max_work = 4}, seed);
    auto result = bkp_schedule(instance, 2.0, 128);
    double total = instance.total_work().to_double();
    EXPECT_LE(result.unfinished_work, 0.01 * total) << "seed " << seed;
    EXPECT_LE(result.max_deadline_shortfall, 0.05 * total) << "seed " << seed;
    EXPECT_GT(result.energy, 0.0);
  }
}

TEST(Bkp, SpeedAlwaysCoversCurrentDensity) {
  // BKP's speed at time t dominates w(t-, t, d)/(d - t) for the tightest pending
  // deadline; for a single job its speed must be >= remaining density at release.
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 1);
  auto result = bkp_schedule(instance, 2.0, 64);
  ASSERT_FALSE(result.speed_profile.empty());
  EXPECT_GE(result.speed_profile.front().second, 2.0 - 1e-9);
  EXPECT_LE(result.unfinished_work, 1e-6);
}

TEST(Bkp, EnergyWithinTheoreticalBoundTimesOpt) {
  AlphaPower p(2.0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = generate_bursty({.bursts = 2, .jobs_per_burst = 4,
                                         .machines = 1, .horizon = 16,
                                         .burst_window = 4, .max_work = 4}, seed);
    auto result = bkp_schedule(instance, 2.0, 64);
    double opt = optimal_energy(instance, p);
    EXPECT_LE(result.energy, bkp_competitive_bound(2.0) * opt * 1.05)
        << "seed " << seed;
    EXPECT_GE(result.energy, opt * 0.95) << "seed " << seed;
  }
}

TEST(Bkp, RefinementReducesUnfinishedWork) {
  Instance instance = generate_uniform({.jobs = 5, .machines = 1, .horizon = 10,
                                        .max_window = 5, .max_work = 4}, 3);
  auto coarse = bkp_schedule(instance, 2.0, 8);
  auto fine = bkp_schedule(instance, 2.0, 256);
  EXPECT_LE(fine.unfinished_work, coarse.unfinished_work + 1e-9);
}

TEST(Bkp, ProfileCoversHorizon) {
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(5), Q(8), Q(3)}}, 1);
  auto result = bkp_schedule(instance, 3.0, 16);
  ASSERT_FALSE(result.speed_profile.empty());
  EXPECT_DOUBLE_EQ(result.speed_profile.front().first, 0.0);
  EXPECT_LT(result.speed_profile.back().first, 8.0);
  EXPECT_GE(result.speed_profile.back().first, 7.0);
}

}  // namespace
}  // namespace mpss
