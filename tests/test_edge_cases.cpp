// Cross-module edge cases that don't belong to any single module's suite:
// degenerate shapes, extreme multiplicities, offset horizons, deep rationals.

#include <gtest/gtest.h>

#include "mpss/core/gantt.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/core/profile.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(EdgeCases, ManyIdenticalJobsOnePhase) {
  // 60 identical unit jobs in one window on 7 machines: a single phase at the
  // exact speed 60/7, wrapped with chunks of 7/60 each.
  std::vector<Job> jobs(60, Job{Q(0), Q(1), Q(1)});
  Instance instance(jobs, 7);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(60, 7));
  auto report = check_schedule(instance, result.schedule);
  EXPECT_TRUE(report.feasible) << report.violations.front();
}

TEST(EdgeCases, StaircaseWindows) {
  // Overlapping chain [i, i+2), each with work 2: uniform speed 1 everywhere on
  // m = 2 except the half-loaded ends.
  std::vector<Job> jobs;
  for (std::int64_t i = 0; i < 8; ++i) jobs.push_back(Job{Q(i), Q(i + 2), Q(2)});
  Instance instance(jobs, 2);
  auto result = optimal_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  // Interior load: 2 active jobs of density 1 each on 2 machines.
  auto aggregate = aggregate_speed_profile(result.schedule);
  EXPECT_EQ(aggregate.integral(), Q(16));
}

TEST(EdgeCases, TouchingWindowsShareNoCapacity) {
  // Back-to-back windows [0,1) and [1,2): atomic intervals never bleed into each
  // other even when a job's deadline equals another's release.
  Instance instance({Job{Q(0), Q(1), Q(3)}, Job{Q(1), Q(2), Q(5)}}, 1);
  auto result = optimal_schedule(instance);
  EXPECT_EQ(result.speed_of_job(0), Q(3));
  EXPECT_EQ(result.speed_of_job(1), Q(5));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(EdgeCases, AvrWithFarOffsetHorizon) {
  // Integral horizon starting at 1000: AVR's unit-interval loop must start at
  // the horizon start, not at zero.
  Instance instance({Job{Q(1000), Q(1004), Q(8)}, Job{Q(1001), Q(1003), Q(2)}}, 2);
  auto result = avr_schedule(instance);
  auto report = check_schedule(instance, result.schedule);
  ASSERT_TRUE(report.feasible) << report.violations.front();
  EXPECT_EQ(result.schedule.work_on_in(0, Q(1000), Q(1001)), Q(2));
}

TEST(EdgeCases, OaWithZeroWorkLateArrival) {
  // A zero-work job arriving mid-run must not disturb OA at all.
  Instance with_zero({Job{Q(0), Q(4), Q(4)}, Job{Q(2), Q(4), Q(0)}}, 1);
  Instance without({Job{Q(0), Q(4), Q(4)}}, 1);
  AlphaPower p(2.0);
  EXPECT_DOUBLE_EQ(oa_energy(with_zero, p), oa_energy(without, p));
}

TEST(EdgeCases, GanttJobIdsAboveNineWrapToDigits) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 15});  // glyph '5'
  GanttOptions options;
  options.width = 20;
  options.show_speeds = false;
  std::string out = render_gantt(schedule, options);
  EXPECT_NE(out.find(std::string(20, '5')), std::string::npos);
}

TEST(EdgeCases, FastScheduleMaxSpeed) {
  Instance instance({Job{Q(0), Q(1), Q(6)}, Job{Q(0), Q(3), Q(1)}}, 2);
  auto fast = optimal_schedule_fast(instance);
  EXPECT_NEAR(fast.schedule.max_speed(), 6.0, 1e-12);
}

TEST(EdgeCases, StepFunctionPlusMergesEqualValues) {
  StepFunction a({{Q(0), Q(1)}}, Q(2));
  StepFunction b({{Q(2), Q(1)}}, Q(4));
  StepFunction sum = a.plus(b);
  // Two abutting segments of equal value canonicalize into one.
  EXPECT_EQ(sum.breakpoints().size(), 2u);
  EXPECT_EQ(sum, StepFunction({{Q(0), Q(1)}}, Q(4)));
}

TEST(EdgeCases, DeepRationalIterationStaysManageable) {
  // x <- (x + 1/3) / 2, 60 iterations: converges to 1/3 with denominators
  // growing geometrically but remaining exact.
  Q x(1);
  for (int i = 0; i < 60; ++i) x = (x + Q(1, 3)) / Q(2);
  EXPECT_NEAR(x.to_double(), 1.0 / 3.0, 1e-15);
  EXPECT_LT(x.den().bit_length(), 80u);  // ~2^61 * 3
}

TEST(EdgeCases, HugeDigitStringsRoundTrip) {
  Xoshiro256 rng(2);
  for (int round = 0; round < 50; ++round) {
    std::string digits;
    digits.push_back(static_cast<char>('1' + rng.below(9)));
    std::size_t length = 20 + rng.below(180);
    for (std::size_t i = 1; i < length; ++i) {
      digits.push_back(static_cast<char>('0' + rng.below(10)));
    }
    EXPECT_EQ(BigInt::from_string(digits).to_string(), digits);
  }
}

TEST(EdgeCases, SingleMicroscopicJob) {
  Instance instance({Job{Q(0), Q(1, 1000000), Q(1, 1000000000)}}, 1);
  auto result = optimal_schedule(instance);
  EXPECT_EQ(result.phases[0].speed, Q(1, 1000));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(EdgeCases, WideMachineCountDoesNotBlowUp) {
  std::vector<Job> jobs(5, Job{Q(0), Q(2), Q(2)});
  Instance instance(jobs, 1000);
  auto result = optimal_schedule(instance);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(1));  // each job alone at its density
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

}  // namespace
}  // namespace mpss
