// Tests for the capacity-planning helpers (S39).

#include "mpss/ext/capacity.hpp"

#include <gtest/gtest.h>

#include "mpss/ext/bounded_speed.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Capacity, MachinesNeededOnContendedWindow) {
  // 6 unit jobs in [0,1): peak speed with m machines is 6/m (until m >= 6).
  std::vector<Job> jobs(6, Job{Q(0), Q(1), Q(1)});
  Instance instance(jobs, 1);
  EXPECT_EQ(machines_needed(instance, Q(6)), 1u);
  EXPECT_EQ(machines_needed(instance, Q(3)), 2u);
  EXPECT_EQ(machines_needed(instance, Q(2)), 3u);
  EXPECT_EQ(machines_needed(instance, Q(1)), 6u);
  // Below any single job's density: impossible at any machine count.
  EXPECT_EQ(machines_needed(instance, Q(1, 2)), 0u);
}

TEST(Capacity, MachinesNeededRespectsMaxMachines) {
  std::vector<Job> jobs(8, Job{Q(0), Q(1), Q(1)});
  Instance instance(jobs, 1);
  EXPECT_EQ(machines_needed(instance, Q(1), 8), 8u);
  EXPECT_EQ(machines_needed(instance, Q(1), 4), 0u);  // not enough allowed
}

TEST(Capacity, MachinesNeededValidation) {
  Instance instance({Job{Q(0), Q(1), Q(1)}}, 1);
  EXPECT_THROW((void)machines_needed(instance, Q(0)), std::invalid_argument);
  EXPECT_THROW((void)machines_needed(instance, Q(1), 0), std::invalid_argument);
  Instance zero({Job{Q(0), Q(1), Q(0)}}, 1);
  EXPECT_EQ(machines_needed(zero, Q(1, 100)), 1u);
}

TEST(Capacity, MachinesNeededConsistentWithFeasibilityOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = generate_bursty({.bursts = 2, .jobs_per_burst = 5,
                                         .machines = 1, .horizon = 14,
                                         .burst_window = 3, .max_work = 5}, seed);
    Q cap(3);
    std::size_t needed = machines_needed(instance, cap, 32);
    if (needed == 0) {
      EXPECT_FALSE(feasible_with_cap(instance.with_machines(32), cap)) << seed;
      continue;
    }
    EXPECT_TRUE(feasible_with_cap(instance.with_machines(needed), cap)) << seed;
    if (needed > 1) {
      EXPECT_FALSE(feasible_with_cap(instance.with_machines(needed - 1), cap))
          << seed;
    }
  }
}

TEST(Capacity, CurveIsMonotone) {
  AlphaPower p(2.5);
  Instance instance = generate_uniform({.jobs = 10, .machines = 1, .horizon = 12,
                                        .max_window = 6, .max_work = 5}, 4);
  auto curve = capacity_curve(instance, p, 6);
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].machines, i + 1);
    EXPECT_LE(curve[i].energy, curve[i - 1].energy * (1 + 1e-12)) << i;
    EXPECT_LE(curve[i].peak_speed, curve[i - 1].peak_speed) << i;
  }
  // Diminishing returns: the curve flattens once m exceeds peak parallelism.
  EXPECT_NEAR(curve[5].energy, curve[4].energy, 1e-9 + 0.25 * curve[4].energy);
}

TEST(Capacity, CurveValidation) {
  Instance instance({Job{Q(0), Q(1), Q(1)}}, 1);
  EXPECT_THROW((void)capacity_curve(instance, AlphaPower(2.0), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpss
