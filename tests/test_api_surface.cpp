// Public API surface test: includes ONLY the umbrella header and touches every
// public entry point once. Protects against headers silently dropping out of
// mpss.hpp and against accidental signature breaks (this file is effectively the
// library's compile-time contract).

#include "mpss/mpss.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mpss {
namespace {

TEST(ApiSurface, EverySubsystemReachableThroughUmbrellaHeader) {
  // util
  BigInt big = BigInt::from_string("42");
  Q q(1, 3);
  Xoshiro256 rng(1);
  RunningStats stats;
  stats.add(1.0);
  SampleSet samples;
  samples.add(1.0);
  std::ostringstream sink;
  CsvWriter csv(sink);
  csv.row(std::string("x"), 1);
  Table table({"a"});
  table.row(1);
  table.print(sink);
  table.print_csv(sink);
  parallel_for(2, [](std::size_t) {}, 2);

  // core model
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(0), Q(2), Q(2)}}, 2);
  IntervalDecomposition intervals(instance.jobs());
  AlphaPower alpha_power(2.0);
  PiecewiseLinearPower piecewise({{0, 0}, {1, 1}, {2, 4}});
  CubicPlusLeakagePower cubic(1, 0, 0);

  // offline engines
  OptimalResult optimal = optimal_schedule(instance);
  OptimalResult with_options = optimal_schedule(instance, OptimalOptions{});
  FastOptimalResult fast = optimal_schedule_fast(instance);
  YdsResult yds = yds_schedule(instance.with_machines(1));

  // schedule tooling
  EXPECT_TRUE(check_schedule(instance, optimal.schedule).feasible);
  EXPECT_EQ(count_fast_violations(instance, fast.schedule), 0u);
  (void)render_gantt(optimal.schedule);
  (void)schedule_metrics(optimal.schedule);
  (void)lemma2_normal_form(instance, optimal.schedule);
  (void)has_constant_interval_speeds(instance, optimal.schedule);
  (void)aggregate_speed_profile(optimal.schedule);
  (void)machine_speed_profile(optimal.schedule, 0);
  (void)parallelism_profile(optimal.schedule);
  (void)execute_schedule(instance, optimal.schedule);
  (void)best_lower_bound(instance, alpha_power, 2.0);
  std::vector<Chunk> chunks{{0, Q(1)}};
  Schedule packed(1);
  mcnaughton_pack(packed, Q(0), Q(2), 0, 1, Q(1), chunks);

  // online
  OnlineRunResult oa = oa_schedule(instance);
  AvrResult avr = avr_schedule(instance);
  AvrResult avr_opts = avr_schedule(instance, AvrOptions{});
  (void)avr_density_profile(instance);
  (void)bkp_schedule(instance.with_machines(1), 2.0, 8);
  (void)oa_potential_trace(instance, 2.0);
  (void)oa_competitive_bound(2.0);
  (void)avr_multi_competitive_bound(2.0);
  (void)bell_number(5);
  AdversaryConfig adversary;
  adversary.iterations = 2;
  adversary.restarts = 1;
  (void)search_adversary(OnlineAlgorithmKind::kOa, adversary, 1);

  // baselines & extensions
  (void)nonmigratory_greedy(instance, alpha_power);
  (void)lp_baseline(instance, alpha_power, 4);
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_row({{0, 1.0}}, Relation::kGreaterEqual, 1.0);
  EXPECT_EQ(solve_lp(lp).status, LpSolution::Status::kOptimal);
  (void)discretize_speeds(optimal.schedule, geometric_levels(Q(10), Q(2), 6));
  SleepModel sleep{2.0, 1.0};
  (void)race_to_idle(optimal.schedule, critical_speed_rational(sleep));
  (void)energy_with_sleep(optimal.schedule, sleep);
  (void)feasible_with_cap(instance, Q(10));
  (void)minimal_peak_speed(instance);
  (void)machines_needed(instance, Q(10), 4);
  (void)capacity_curve(instance, alpha_power, 2);

  // observability
  obs::Counters counters;
  counters.add("api.touch");
  obs::Registry::global().merge(counters);
  obs::MemorySink memory_sink;
  obs::emit(&memory_sink, obs::EventKind::kCounter, "api.surface");
  (void)obs::to_jsonl(memory_sink.events().front());
  (void)obs::parse_trace_jsonl(std::string_view(""));
  obs::SolveStats merged;
  merged.merge(optimal.stats);

  // instance value API + canonical JSON codec
  PowerSpec spec = PowerSpec::alpha(2.0);
  Instance with_spec = instance.with_power(spec);
  (void)with_spec.fingerprint();
  Instance decoded = instance_from_json(instance_to_json(with_spec));

  // the network layer: server, client, protocol codec
  net::SolveServer server;
  net::SolveClient client("127.0.0.1", server.port());
  SolveResult remote = client.solve(instance);
  (void)client.health();
  server.shutdown();
  (void)net::verb_name(net::Verb::kSolve);
  (void)net::error_code_name(net::ErrorCode::kQueueFull);

  // the solve() facade
  SolveResult facade = solve(instance);
  SolveOptions lp_options;
  lp_options.engine = Engine::kLp;
  lp_options.lp_grid = 4;
  SolveResult lp_facade = solve(instance, lp_options);
  (void)engine_name(Engine::kFast);
  (void)solve_status_name(facade.status);

  // workloads & traces
  (void)generate_uniform({.jobs = 2, .machines = 1, .horizon = 4, .max_window = 2,
                          .max_work = 2}, 1);
  (void)generate_heavy_tail({.jobs = 2, .machines = 1, .horizon = 8, .shape = 1.5,
                             .max_work = 4}, 1);
  (void)analyze(instance);
  (void)instance_from_csv(instance_to_csv(instance));
  (void)schedule_from_csv(schedule_to_csv(optimal.schedule));
  (void)shift_time(instance, Q(1));
  (void)scale_time(instance, Q(2));
  (void)scale_work(instance, Q(2));

  // Spot-check values so the calls above are not optimized into oblivion.
  EXPECT_EQ(big.to_int64(), 42);
  EXPECT_EQ(q * Q(3), Q(1));
  EXPECT_EQ(optimal.phases.size(), with_options.phases.size());
  EXPECT_EQ(fast.phase_speeds.size(), optimal.phases.size());
  EXPECT_EQ(yds.schedule.machines(), 1u);
  EXPECT_EQ(oa.schedule.machines(), 2u);
  EXPECT_EQ(avr.schedule.machines(), avr_opts.schedule.machines());
  EXPECT_GT(rng(), 0u);
  EXPECT_EQ(memory_sink.count_label("api.surface"), 1u);
  EXPECT_EQ(merged.phases, optimal.phases.size());
  EXPECT_EQ(decoded, with_spec);
  EXPECT_EQ(remote.energy, solve(instance).energy);
  ASSERT_TRUE(facade.ok());
  ASSERT_NE(facade.exact_schedule(), nullptr);
  EXPECT_TRUE(lp_facade.ok());
  EXPECT_DOUBLE_EQ(facade.energy,
                   optimal.schedule.energy(AlphaPower(3.0)));
}

}  // namespace
}  // namespace mpss
