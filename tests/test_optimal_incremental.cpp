// Differential tests for the warm-started incremental flow rounds (DESIGN S42):
// the exact engine's incremental path must be BIT-IDENTICAL to the rebuild
// path -- phases, speeds, reservations, rounds, and the full schedule -- on the
// golden corpus and across random workloads; the fast (double) engine agrees
// within its usual tolerances. Also pins the warm-start telemetry counters.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/error.hpp"
#include "mpss/workload/generators.hpp"
#include "mpss/workload/traces.hpp"

#ifndef MPSS_DATA_DIR
#error "MPSS_DATA_DIR must point at data/corpus"
#endif

namespace mpss {
namespace {

OptimalResult run_exact(const Instance& instance, bool incremental,
                        OptimalOptions::RemovalPolicy policy =
                            OptimalOptions::RemovalPolicy::kPaperRule,
                        std::uint64_t seed = 0) {
  OptimalOptions options;
  options.incremental = incremental;
  options.removal_policy = policy;
  options.ablation_seed = seed;
  return optimal_schedule(instance, options);
}

void expect_bit_identical(const Instance& instance, const OptimalResult& warm,
                          const OptimalResult& rebuild, const std::string& tag) {
  EXPECT_EQ(warm.flow_computations, rebuild.flow_computations) << tag;
  ASSERT_EQ(warm.phases.size(), rebuild.phases.size()) << tag;
  for (std::size_t i = 0; i < warm.phases.size(); ++i) {
    EXPECT_EQ(warm.phases[i].jobs, rebuild.phases[i].jobs) << tag << " phase " << i;
    EXPECT_EQ(warm.phases[i].speed, rebuild.phases[i].speed) << tag << " phase " << i;
    EXPECT_EQ(warm.phases[i].machines_per_interval,
              rebuild.phases[i].machines_per_interval)
        << tag << " phase " << i;
    EXPECT_EQ(warm.phases[i].rounds, rebuild.phases[i].rounds) << tag << " phase " << i;
  }
  for (std::size_t job = 0; job < instance.size(); ++job) {
    EXPECT_EQ(warm.speed_of_job(job), rebuild.speed_of_job(job)) << tag << " job " << job;
  }
  ASSERT_EQ(warm.schedule.machines(), rebuild.schedule.machines()) << tag;
  for (std::size_t machine = 0; machine < warm.schedule.machines(); ++machine) {
    auto lhs = warm.schedule.machine(machine);
    auto rhs = rebuild.schedule.machine(machine);
    ASSERT_EQ(lhs.size(), rhs.size()) << tag << " machine " << machine;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i], rhs[i]) << tag << " machine " << machine << " slice " << i;
    }
  }
}

std::vector<std::string> corpus_names() {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(MPSS_DATA_DIR)) {
    std::string file = entry.path().filename().string();
    const std::string suffix = ".instance.csv";
    if (file.size() > suffix.size() &&
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
      names.push_back(file.substr(0, file.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

class IncrementalCorpus : public testing::TestWithParam<std::string> {};

TEST_P(IncrementalCorpus, WarmStartIsBitIdenticalToRebuild) {
  Instance instance =
      load_instance(std::string(MPSS_DATA_DIR) + "/" + GetParam() + ".instance.csv");
  auto warm = run_exact(instance, /*incremental=*/true);
  auto rebuild = run_exact(instance, /*incremental=*/false);
  expect_bit_identical(instance, warm, rebuild, GetParam());
}

INSTANTIATE_TEST_SUITE_P(GoldenInstances, IncrementalCorpus,
                         testing::ValuesIn(corpus_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(OptimalIncremental, RandomWorkloadsAreBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Instance uniform = generate_uniform(
        UniformWorkload{.jobs = 18, .machines = 3, .horizon = 40, .max_window = 14,
                        .max_work = 9},
        seed);
    auto warm = run_exact(uniform, true);
    auto rebuild = run_exact(uniform, false);
    expect_bit_identical(uniform, warm, rebuild, "uniform seed " + std::to_string(seed));

    Instance laminar = generate_laminar(
        LaminarWorkload{.jobs = 20, .machines = 2, .depth = 4, .max_work = 12}, seed);
    warm = run_exact(laminar, true);
    rebuild = run_exact(laminar, false);
    expect_bit_identical(laminar, warm, rebuild, "laminar seed " + std::to_string(seed));
  }
}

TEST(OptimalIncremental, AblatedPolicyWithFixedSeedIsBitIdentical) {
  // kRandomCandidate picks victims from the PRNG, independently of the flow, so
  // the incremental and rebuild trajectories coincide step for step -- including
  // the documented dead end (random removals can strand pending jobs with no
  // capacity, which surfaces as InternalError on BOTH paths or on neither).
  Instance instance = generate_uniform(
      UniformWorkload{.jobs = 16, .machines = 3, .horizon = 30, .max_window = 10,
                      .max_work = 8},
      7);
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto run = [&](bool incremental) -> std::optional<OptimalResult> {
      try {
        return run_exact(instance, incremental,
                         OptimalOptions::RemovalPolicy::kRandomCandidate, seed);
      } catch (const InternalError&) {
        return std::nullopt;
      }
    };
    auto warm = run(true);
    auto rebuild = run(false);
    ASSERT_EQ(warm.has_value(), rebuild.has_value()) << "seed " << seed;
    if (!warm.has_value()) continue;
    ++compared;
    EXPECT_EQ(warm->flow_computations, rebuild->flow_computations) << "seed " << seed;
    ASSERT_EQ(warm->phases.size(), rebuild->phases.size()) << "seed " << seed;
    for (std::size_t i = 0; i < warm->phases.size(); ++i) {
      EXPECT_EQ(warm->phases[i].jobs, rebuild->phases[i].jobs) << seed << "/" << i;
      EXPECT_EQ(warm->phases[i].speed, rebuild->phases[i].speed) << seed << "/" << i;
    }
    EXPECT_EQ(warm->schedule.slice_count(), rebuild->schedule.slice_count())
        << "seed " << seed;
  }
  EXPECT_GT(compared, 0u) << "every ablation seed dead-ended; pick another instance";
}

TEST(OptimalIncremental, FastEngineAgreesWithinTolerance) {
  AlphaPower cube(3.0);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Instance instance = generate_uniform(
        UniformWorkload{.jobs = 20, .machines = 3, .horizon = 40, .max_window = 12,
                        .max_work = 9},
        seed);
    FastOptimalOptions warm_options;
    FastOptimalOptions rebuild_options;
    rebuild_options.incremental = false;
    auto warm = optimal_schedule_fast(instance, warm_options);
    auto rebuild = optimal_schedule_fast(instance, rebuild_options);

    EXPECT_EQ(count_fast_violations(instance, warm.schedule), 0u) << seed;
    EXPECT_EQ(count_fast_violations(instance, rebuild.schedule), 0u) << seed;
    ASSERT_EQ(warm.phase_speeds.size(), rebuild.phase_speeds.size()) << seed;
    for (std::size_t i = 0; i < warm.phase_speeds.size(); ++i) {
      EXPECT_NEAR(warm.phase_speeds[i], rebuild.phase_speeds[i],
                  1e-6 * (1.0 + rebuild.phase_speeds[i]))
          << seed << " phase " << i;
    }
    double warm_energy = warm.schedule.energy(cube);
    double rebuild_energy = rebuild.schedule.energy(cube);
    EXPECT_NEAR(warm_energy, rebuild_energy, 1e-6 * (1.0 + rebuild_energy)) << seed;
  }
}

/// A deep laminar workload forces long removal chains (phases with several
/// rounds), which is what the warm starts exist for; the same workload family
/// drives bench_offline's round-scaling benchmarks.
Instance removal_heavy_instance() {
  return generate_laminar(
      LaminarWorkload{.jobs = 24, .machines = 3, .depth = 7, .max_work = 12}, 3);
}

TEST(OptimalIncremental, WarmStartCountersSurfaceThroughStats) {
  Instance instance = removal_heavy_instance();
  auto warm = run_exact(instance, true);
  ASSERT_GT(warm.flow_computations, warm.phases.size())
      << "precondition: instance must have removal rounds";
  EXPECT_GT(warm.stats.counters.value("flow.warm_starts"), 0u);
  EXPECT_GT(warm.stats.counters.value("flow.resume_bfs"), 0u);
  EXPECT_GT(warm.stats.counters.value("flow.retracted_units"), 0u);

  auto rebuild = run_exact(instance, false);
  EXPECT_EQ(rebuild.stats.counters.value("flow.warm_starts"), 0u);
  EXPECT_EQ(rebuild.stats.counters.value("flow.resume_bfs"), 0u);
  EXPECT_EQ(rebuild.stats.counters.value("flow.retracted_units"), 0u);
}

TEST(OptimalIncremental, WarmStartReducesDinicWork) {
  Instance instance = removal_heavy_instance();
  auto warm = run_exact(instance, true);
  auto rebuild = run_exact(instance, false);
  expect_bit_identical(instance, warm, rebuild, "removal-heavy");
  // Total Dinic work (level graphs built + augmenting paths pushed): resumed
  // rounds re-augment only the retracted slack, so the warm path must do
  // strictly less than rebuild-every-round even counting the canonical
  // closing re-solves.
  std::size_t warm_work = warm.stats.flow_bfs_rounds + warm.stats.flow_augmenting_paths;
  std::size_t rebuild_work =
      rebuild.stats.flow_bfs_rounds + rebuild.stats.flow_augmenting_paths;
  EXPECT_LT(warm_work, rebuild_work);
}

TEST(OptimalIncremental, SolveFacadePublishesFlowCountersToRegistry) {
  Instance instance = removal_heavy_instance();
  auto before = obs::Registry::global().snapshot().value("flow.warm_starts");
  SolveOptions options;
  options.engine = Engine::kExact;
  auto result = solve(instance, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.stats.counters.value("flow.warm_starts"), 0u);
  auto after = obs::Registry::global().snapshot().value("flow.warm_starts");
  EXPECT_GT(after, before);

  // The facade's fast_incremental knob reaches the fast engine.
  SolveOptions fast_off;
  fast_off.engine = Engine::kFast;
  fast_off.fast_incremental = false;
  auto fast_result = solve(instance, fast_off);
  ASSERT_TRUE(fast_result.ok());
  EXPECT_EQ(fast_result.stats.counters.value("flow.warm_starts"), 0u);
}

TEST(OptimalIncremental, ArenaCountersSurfaceThroughStats) {
  Instance instance = removal_heavy_instance();
  auto result = run_exact(instance, true);
  // The engine routed its scratch through the pooled arena and reported how
  // much it carved out of it.
  EXPECT_GT(result.stats.counters.value("mem.arena_bytes"), 0u);
}

TEST(OptimalIncremental, SteadyStateWarmRoundsAreAllocationFree) {
  // The S46 pin: once a thread's pooled arena is warmed by one solve, every
  // subsequent solve of comparable shape must run without grabbing a single
  // new heap block (mem.fallback_allocs == 0) and must actually be reusing the
  // pooled arena (mem.arena_reuses counts rewinds at scope release, so the
  // second solve observes at least one).
  Instance instance = removal_heavy_instance();
  (void)run_exact(instance, true);  // cold solve: warms this thread's pool
  for (int round = 0; round < 3; ++round) {
    auto warm = run_exact(instance, true);
    EXPECT_EQ(warm.stats.counters.value("mem.fallback_allocs"), 0u)
        << "steady-state round " << round << " fell back to the heap";
    EXPECT_GE(warm.stats.counters.value("mem.arena_reuses"), 1u);
    EXPECT_GT(warm.stats.counters.value("mem.arena_bytes"), 0u);
  }
}

TEST(OptimalIncremental, SteadyStateHoldsOnCorpusInstances) {
  for (const std::string& name : corpus_names()) {
    Instance instance =
        load_instance(std::string(MPSS_DATA_DIR) + "/" + name + ".instance.csv");
    (void)run_exact(instance, true);  // warm the pool for this shape
    auto warm = run_exact(instance, true);
    EXPECT_EQ(warm.stats.counters.value("mem.fallback_allocs"), 0u)
        << name << ": warm corpus solve allocated outside the pooled arena";
    EXPECT_GE(warm.stats.counters.value("mem.arena_reuses"), 1u) << name;
  }
}

}  // namespace
}  // namespace mpss
