// Golden regression corpus: checked-in instances with checked-in EXACT optimal
// per-job speeds (regenerate with tools/make_corpus after intentional algorithm
// changes). Any refactor of the offline algorithm that alters an output breaks
// these tests with a precise diff.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "mpss/core/instance_json.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/util/csv.hpp"
#include "mpss/workload/traces.hpp"

#ifndef MPSS_DATA_DIR
#error "MPSS_DATA_DIR must point at data/corpus"
#endif

namespace mpss {
namespace {

std::vector<std::string> corpus_names() {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(MPSS_DATA_DIR)) {
    std::string file = entry.path().filename().string();
    const std::string suffix = ".instance.csv";
    if (file.size() > suffix.size() &&
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
      names.push_back(file.substr(0, file.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class Corpus : public testing::TestWithParam<std::string> {};

TEST_P(Corpus, OptimalSpeedsMatchGoldenExactly) {
  std::string base = std::string(MPSS_DATA_DIR) + "/" + GetParam();
  Instance instance = load_instance(base + ".instance.csv");
  auto golden_rows = parse_csv(read_file(base + ".golden.csv"));
  ASSERT_GE(golden_rows.size(), 1u);
  ASSERT_EQ(golden_rows[0], (std::vector<std::string>{"job", "speed"}));
  ASSERT_EQ(golden_rows.size(), instance.size() + 1);

  auto result = optimal_schedule(instance);
  ASSERT_TRUE(check_schedule(instance, result.schedule).feasible);
  for (std::size_t row = 1; row < golden_rows.size(); ++row) {
    ASSERT_EQ(golden_rows[row].size(), 2u);
    auto job = static_cast<std::size_t>(std::stoull(golden_rows[row][0]));
    Q expected = Q::from_string(golden_rows[row][1]);
    EXPECT_EQ(result.speed_of_job(job), expected)
        << GetParam() << " job " << job << ": got "
        << result.speed_of_job(job).to_string() << ", golden "
        << expected.to_string();
  }
}

// The BigInt small-value fast path is an internal representation change only:
// replaying the whole corpus with the limb path forced must reproduce the
// golden per-job speeds bit-for-bit (same canonical num/den strings).
TEST_P(Corpus, ForcedLimbPathIsBitIdenticalToTheSmallPath) {
  std::string base = std::string(MPSS_DATA_DIR) + "/" + GetParam();
  Instance instance = load_instance(base + ".instance.csv");

  auto small = optimal_schedule(instance);
  BigInt::set_test_force_big(true);
  auto forced = optimal_schedule(instance);
  BigInt::set_test_force_big(false);

  ASSERT_EQ(small.phases.size(), forced.phases.size());
  for (std::size_t job = 0; job < instance.size(); ++job) {
    EXPECT_EQ(small.speed_of_job(job).to_string(),
              forced.speed_of_job(job).to_string())
        << GetParam() << " job " << job;
  }
  AlphaPower cube(3.0);
  EXPECT_EQ(small.schedule.energy(cube), forced.schedule.energy(cube))
      << GetParam();
}

// make_corpus writes every instance twice: the CSV the goldens key off and a
// canonical-JSON sibling (the protocol test vectors). The two must decode to
// the same jobs/machines, and the JSON must be in canonical form.
TEST_P(Corpus, JsonSiblingMatchesTheCsvInstance) {
  std::string base = std::string(MPSS_DATA_DIR) + "/" + GetParam();
  Instance from_csv = load_instance(base + ".instance.csv");
  Instance from_json = load_instance(base + ".instance.json");
  EXPECT_EQ(from_csv, from_json) << GetParam();
  EXPECT_EQ(read_file(base + ".instance.json"),
            instance_to_json(from_json) + "\n")
      << GetParam();
}

TEST(CorpusMeta, CorpusIsNonEmpty) { EXPECT_GE(corpus_names().size(), 8u); }

INSTANTIATE_TEST_SUITE_P(GoldenInstances, Corpus, testing::ValuesIn(corpus_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace mpss
