// Tests for the command-line flag parser used by examples and experiments.

#include "mpss/util/cli.hpp"

#include <gtest/gtest.h>

namespace mpss {
namespace {

CliArgs parse(std::vector<const char*> argv, std::vector<std::string> spec) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), std::move(spec));
}

TEST(Cli, EqualsForm) {
  auto args = parse({"--alpha=2.5", "--n=30"}, {"alpha", "n"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(args.get_int("n", 0), 30);
}

TEST(Cli, SpaceSeparatedForm) {
  auto args = parse({"--alpha", "3", "--name", "run1"}, {"alpha", "name"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.0);
  EXPECT_EQ(args.get("name", ""), "run1");
}

TEST(Cli, BooleanFlagWithoutValue) {
  auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, BooleanExplicitValues) {
  EXPECT_TRUE(parse({"--x=true"}, {"x"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}, {"x"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}, {"x"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}, {"x"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}, {"x"}).get_bool("x", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  auto args = parse({}, {"alpha"});
  EXPECT_FALSE(args.has("alpha"));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 2.0), 2.0);
  EXPECT_EQ(args.get_int("alpha", 7), 7);
  EXPECT_EQ(args.get("alpha", "dflt"), "dflt");
  EXPECT_TRUE(args.get_bool("alpha", true));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--oops=1"}, {"alpha"}), std::invalid_argument);
  EXPECT_THROW(parse({"--alhpa", "2"}, {"alpha"}), std::invalid_argument);
}

TEST(Cli, PositionalArgumentsPreserved) {
  auto args = parse({"input.csv", "--n=3", "output.csv"}, {"n"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Cli, ValueStartingWithDashesTreatedAsNextFlag) {
  // "--a --b": a becomes boolean, b captured.
  auto args = parse({"--a", "--b"}, {"a", "b"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.has("b"));
}

}  // namespace
}  // namespace mpss
