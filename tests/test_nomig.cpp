// Tests for the non-migratory baselines (S15) and the value-of-migration
// comparison (experiment E7).

#include "mpss/nomig/nonmigratory.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

Instance small_instance(std::uint64_t seed) {
  return generate_uniform({.jobs = 6, .machines = 2, .horizon = 10, .max_window = 5,
                           .max_work = 4}, seed);
}

TEST(Nomig, ScheduleForAssignmentIsFeasibleAndPinned) {
  Instance instance = small_instance(1);
  std::vector<std::size_t> assignment{0, 1, 0, 1, 0, 1};
  AlphaPower p(2.0);
  auto result = schedule_for_assignment(instance, assignment, p);
  auto report = check_schedule(instance, result.schedule);
  ASSERT_TRUE(report.feasible) << report.violations.front();
  // Non-migratory: every job's slices live on its assigned machine only.
  for (std::size_t k = 0; k < instance.size(); ++k) {
    for (std::size_t machine = 0; machine < 2; ++machine) {
      for (const Slice& slice : result.schedule.machine(machine)) {
        if (slice.job == k) {
          EXPECT_EQ(machine, assignment[k]);
        }
      }
    }
  }
  EXPECT_GT(result.energy, 0.0);
}

TEST(Nomig, ScheduleForAssignmentValidatesInput) {
  Instance instance = small_instance(1);
  AlphaPower p(2.0);
  EXPECT_THROW((void)schedule_for_assignment(instance, {0, 1}, p),
               std::invalid_argument);
  EXPECT_THROW(
      (void)schedule_for_assignment(instance, {0, 1, 2, 0, 1, 9}, p),
      std::invalid_argument);
}

TEST(Nomig, ExactBeatsOrMatchesEveryHeuristic) {
  AlphaPower p(2.0);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = small_instance(seed);
    auto exact = nonmigratory_exact(instance, p);
    auto greedy = nonmigratory_greedy(instance, p);
    auto round_robin = nonmigratory_round_robin(instance, p);
    auto random_best = nonmigratory_random_best(instance, p, seed, 20);
    EXPECT_LE(exact.energy, greedy.energy + 1e-9) << seed;
    EXPECT_LE(exact.energy, round_robin.energy + 1e-9) << seed;
    EXPECT_LE(exact.energy, random_best.energy + 1e-9) << seed;
  }
}

TEST(Nomig, MigratoryOptimumLowerBoundsNonMigratory) {
  // Migration only helps: OPT(migratory) <= OPT(non-migratory) on every instance.
  AlphaPower p(2.5);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = small_instance(seed);
    double migratory = optimal_energy(instance, p);
    auto exact = nonmigratory_exact(instance, p);
    EXPECT_LE(migratory, exact.energy + 1e-9) << "seed " << seed;
  }
}

TEST(Nomig, MigrationStrictlyHelpsOnCraftedInstance) {
  // 3 identical unit jobs, 2 machines, one shared window: migration balances
  // 3 jobs on 2 machines at speed 3/2; without migration one machine must run two
  // jobs sequentially at speed 2.
  Instance instance({Job{Q(0), Q(1), Q(1)}, Job{Q(0), Q(1), Q(1)},
                     Job{Q(0), Q(1), Q(1)}}, 2);
  AlphaPower p(2.0);
  double migratory = optimal_energy(instance, p);
  auto exact = nonmigratory_exact(instance, p);
  EXPECT_NEAR(migratory, 2.0 * 2.25, 1e-9);  // 2 machines at (3/2)^2
  EXPECT_NEAR(exact.energy, 4.0 + 1.0, 1e-9);  // speed-2 machine + speed-1 machine
  EXPECT_LT(migratory, exact.energy);
}

TEST(Nomig, ExactEnumerationGuard) {
  // 2^30 assignments exceed the default limit.
  std::vector<Job> jobs(30, Job{Q(0), Q(1), Q(1)});
  Instance instance(jobs, 2);
  EXPECT_THROW((void)nonmigratory_exact(instance, AlphaPower(2.0)),
               std::invalid_argument);
}

TEST(Nomig, HeuristicsProduceFeasibleSchedules) {
  AlphaPower p(3.0);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                         .machines = 3, .horizon = 20,
                                         .burst_window = 4, .max_work = 5}, seed);
    for (const auto& result :
         {nonmigratory_greedy(instance, p), nonmigratory_round_robin(instance, p),
          nonmigratory_random_best(instance, p, seed, 10)}) {
      auto report = check_schedule(instance, result.schedule);
      ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                   << report.violations.front();
      EXPECT_EQ(result.assignment.size(), instance.size());
    }
  }
}

TEST(Nomig, SingleMachineAllAgree) {
  // With m = 1 every strategy degenerates to YDS on the whole instance.
  Instance instance = generate_uniform({.jobs = 6, .machines = 1, .horizon = 10,
                                        .max_window = 5, .max_work = 4}, 5);
  AlphaPower p(2.0);
  auto exact = nonmigratory_exact(instance, p);
  auto greedy = nonmigratory_greedy(instance, p);
  double opt = optimal_energy(instance, p);
  EXPECT_NEAR(exact.energy, opt, 1e-9);
  EXPECT_NEAR(greedy.energy, opt, 1e-9);
}

TEST(Nomig, RandomBestImprovesWithMoreTries) {
  Instance instance = small_instance(9);
  AlphaPower p(2.0);
  auto one = nonmigratory_random_best(instance, p, 123, 1);
  auto many = nonmigratory_random_best(instance, p, 123, 50);
  EXPECT_LE(many.energy, one.energy + 1e-9);
  EXPECT_THROW((void)nonmigratory_random_best(instance, p, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpss
