// Tests for the double-precision fast path: it must track the exact engine's
// energy closely and produce (tolerance-)feasible schedules.

#include "mpss/core/optimal_fast.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(OptimalFast, SingleJob) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 2);
  auto fast = optimal_schedule_fast(instance);
  ASSERT_EQ(fast.phase_speeds.size(), 1u);
  EXPECT_NEAR(fast.phase_speeds[0], 2.0, 1e-12);
  EXPECT_EQ(count_fast_violations(instance, fast.schedule), 0u);
  EXPECT_NEAR(fast.schedule.work_on(0), 8.0, 1e-9);
}

TEST(OptimalFast, MatchesExactEngineEnergy) {
  AlphaPower p(2.5);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Instance instance = generate_uniform({.jobs = 12, .machines = 3, .horizon = 20,
                                          .max_window = 9, .max_work = 7}, seed);
    double exact = optimal_energy(instance, p);
    auto fast = optimal_schedule_fast(instance);
    EXPECT_NEAR(fast.schedule.energy(p), exact, 1e-6 * exact) << seed;
    EXPECT_EQ(count_fast_violations(instance, fast.schedule), 0u) << seed;
  }
}

TEST(OptimalFast, MatchesExactPhaseStructure) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_laminar({.jobs = 10, .machines = 2, .depth = 3,
                                          .max_work = 6}, seed);
    auto exact = optimal_schedule(instance);
    auto fast = optimal_schedule_fast(instance);
    ASSERT_EQ(fast.phase_speeds.size(), exact.phases.size()) << seed;
    for (std::size_t i = 0; i < exact.phases.size(); ++i) {
      EXPECT_NEAR(fast.phase_speeds[i], exact.phases[i].speed.to_double(),
                  1e-9 * (1.0 + exact.phases[i].speed.to_double()))
          << seed << " phase " << i;
    }
  }
}

TEST(OptimalFast, PhaseSpeedsDescend) {
  Instance instance = generate_laminar({.jobs = 14, .machines = 2, .depth = 4,
                                        .max_work = 9}, 3);
  auto fast = optimal_schedule_fast(instance);
  for (std::size_t i = 1; i < fast.phase_speeds.size(); ++i) {
    EXPECT_LT(fast.phase_speeds[i], fast.phase_speeds[i - 1] * (1.0 + 1e-9));
  }
}

TEST(OptimalFast, FractionalTimes) {
  Instance instance({Job{Q(0), Q(1, 2), Q(2, 3)}, Job{Q(1, 3), Q(5, 6), Q(1, 7)}}, 2);
  auto fast = optimal_schedule_fast(instance);
  EXPECT_EQ(count_fast_violations(instance, fast.schedule), 0u);
  AlphaPower p(2.0);
  EXPECT_NEAR(fast.schedule.energy(p), optimal_energy(instance, p),
              1e-9 * (1.0 + optimal_energy(instance, p)));
}

TEST(OptimalFast, EmptyAndZeroWork) {
  Instance empty({}, 2);
  EXPECT_EQ(optimal_schedule_fast(empty).schedule.slice_count(), 0u);
  Instance zero({Job{Q(0), Q(3), Q(0)}}, 1);
  auto fast = optimal_schedule_fast(zero);
  EXPECT_EQ(fast.schedule.slice_count(), 0u);
  EXPECT_EQ(count_fast_violations(zero, fast.schedule), 0u);
}

TEST(OptimalFast, RejectsBadEpsilon) {
  Instance instance({Job{Q(0), Q(1), Q(1)}}, 1);
  EXPECT_THROW((void)optimal_schedule_fast(instance, 0.0), std::invalid_argument);
  EXPECT_THROW((void)optimal_schedule_fast(instance, 0.5), std::invalid_argument);
}

TEST(OptimalFast, NoDegenerateSlicesOnLargeHorizons) {
  // Regression: at large absolute times the ulp exceeds sub-rounding wrap
  // remainders, which once produced a zero-length slice overlapping its
  // neighbour (n=64, m=2, seed 7 was the witness).
  Instance instance = generate_uniform({.jobs = 64, .machines = 2, .horizon = 128,
                                        .max_window = 12, .max_work = 9}, 7);
  auto fast = optimal_schedule_fast(instance);
  EXPECT_EQ(count_fast_violations(instance, fast.schedule), 0u);
  for (const auto& machine : fast.schedule.machines) {
    for (const FastSlice& slice : machine) {
      EXPECT_LT(slice.start, slice.end);
    }
  }
}

TEST(OptimalFast, ViolationCounterCatchesBadSchedules) {
  Instance instance({Job{Q(0), Q(2), Q(2)}}, 1);
  FastSchedule bogus;
  bogus.machines.resize(1);
  bogus.machines[0].push_back(FastSlice{0.0, 3.0, 1.0, 0});  // past deadline, wrong work
  EXPECT_GT(count_fast_violations(instance, bogus), 0u);
  FastSchedule overlap;
  overlap.machines.resize(1);
  overlap.machines[0].push_back(FastSlice{0.0, 1.5, 1.0, 0});
  overlap.machines[0].push_back(FastSlice{1.0, 1.5, 1.0, 0});  // machine overlap
  EXPECT_GT(count_fast_violations(instance, overlap), 0u);
}

}  // namespace
}  // namespace mpss
