// Lock-free per-thread trace rings (S43): seq-ordered drain, bounded-memory
// drop accounting, downstream forwarding on flush/destruction, and concurrent
// producers from the ThreadPool (the TSan CI job runs this suite to certify
// the acquire/release protocol).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/ring_sink.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/thread_pool.hpp"

namespace mpss::obs {
namespace {

TraceEvent event_with_seq(std::uint64_t seq) {
  TraceEvent event;
  event.kind = EventKind::kCounter;
  event.label = "ring.test";
  event.a = seq;
  event.seq = seq;
  return event;
}

TEST(RingSink, DrainReturnsEventsInSeqOrder) {
  RingSink ring(64);
  // Record deliberately out of seq order (one thread, shuffled seqs).
  for (std::uint64_t seq : {5u, 1u, 9u, 3u, 7u}) ring.record(event_with_seq(seq));
  auto events = ring.drain();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.seq < b.seq;
                             }));
  EXPECT_EQ(events.front().seq, 1u);
  EXPECT_EQ(events.back().seq, 9u);
  // Drained: a second drain is empty.
  EXPECT_TRUE(ring.drain().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingSink, FullRingDropsNewestAndCounts) {
  RingSink ring(4);
  for (std::uint64_t seq = 0; seq < 10; ++seq) ring.record(event_with_seq(seq));
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.drain();
  // Drop-newest: the *first* capacity events survive (history is never
  // overwritten; bounded memory is the contract).
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t seq = 0; seq < 4; ++seq) EXPECT_EQ(events[seq].seq, seq);

  // After a drain the ring has room again.
  ring.record(event_with_seq(100));
  EXPECT_EQ(ring.drain().size(), 1u);
}

TEST(RingSink, DrainPublishesDropDeltaToRegistryCounter) {
  std::uint64_t before = Registry::global().snapshot().value("trace.dropped");
  RingSink ring(4);
  for (std::uint64_t seq = 0; seq < 10; ++seq) ring.record(event_with_seq(seq));
  // Drops are published at drain time (the record path stays lock-free), and
  // as a delta: a second drain with no new drops must not double-count.
  (void)ring.drain();
  std::uint64_t after = Registry::global().snapshot().value("trace.dropped");
  EXPECT_EQ(after - before, 6u);
  (void)ring.drain();
  EXPECT_EQ(Registry::global().snapshot().value("trace.dropped"), after);
}

TEST(RingSink, FlushForwardsToDownstreamInOrder) {
  MemorySink downstream;
  RingSink ring(64, &downstream);
  for (std::uint64_t seq : {2u, 0u, 1u}) ring.record(event_with_seq(seq));
  EXPECT_EQ(downstream.size(), 0u);  // nothing forwarded before flush
  ring.flush();
  auto events = downstream.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[2].seq, 2u);
}

TEST(RingSink, FlushWithoutDownstreamIsANoOp) {
  RingSink ring(8);
  ring.record(event_with_seq(1));
  ring.flush();  // must not lose the buffered event
  EXPECT_EQ(ring.drain().size(), 1u);
}

TEST(RingSink, DestructorDrainsToDownstream) {
  MemorySink downstream;
  {
    RingSink ring(64, &downstream);
    ring.record(event_with_seq(3));
    ring.record(event_with_seq(4));
  }
  EXPECT_EQ(downstream.size(), 2u);
}

TEST(RingSink, ConcurrentProducersLoseNothingWithinCapacity) {
  RingSink ring(4096);
  constexpr std::size_t kEvents = 3000;  // < capacity per thread
  parallel_for(kEvents, [&ring](std::size_t i) {
    emit(&ring, EventKind::kCounter, "stress", i);
  }, 4);
  auto events = ring.drain();
  EXPECT_EQ(ring.dropped(), 0u);
  ASSERT_EQ(events.size(), kEvents);
  // Global seq order restored across the per-thread rings; seqs unique.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(RingSink, ConcurrentDrainWhileRecordingLosesNoRecordedEvent) {
  RingSink ring(1 << 16);
  constexpr std::size_t kEvents = 5000;
  std::vector<TraceEvent> collected;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto batch = ring.drain();
      collected.insert(collected.end(), batch.begin(), batch.end());
    }
  });
  parallel_for(kEvents, [&ring](std::size_t i) {
    emit(&ring, EventKind::kCounter, "live", i);
  }, 4);
  done.store(true, std::memory_order_release);
  consumer.join();
  auto rest = ring.drain();
  collected.insert(collected.end(), rest.begin(), rest.end());
  EXPECT_EQ(ring.dropped(), 0u);
  ASSERT_EQ(collected.size(), kEvents);
  std::vector<std::uint64_t> seqs;
  seqs.reserve(collected.size());
  for (const TraceEvent& e : collected) seqs.push_back(e.seq);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::unique(seqs.begin(), seqs.end()), seqs.end());
}

TEST(RingSink, ServesAsRegistryDefaultSinkForEmit) {
  RingSink ring(64);
  Registry::global().attach_sink(&ring);
  emit(nullptr, EventKind::kCounter, "via.ring", 11);
  Registry::global().attach_sink(nullptr);
  auto events = ring.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "via.ring");
  EXPECT_EQ(events[0].a, 11u);
}

TEST(RingSink, SinkIdsPreventStaleThreadCacheReuse) {
  // Destroy a ring, then create another that may reuse its address: the
  // thread-local cache is keyed by process-unique sink id, so the second
  // ring must start empty and receive only its own events.
  auto first = std::make_unique<RingSink>(16);
  first->record(event_with_seq(1));
  first.reset();
  RingSink second(16);
  second.record(event_with_seq(2));
  auto events = second.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 2u);
}

}  // namespace
}  // namespace mpss::obs
