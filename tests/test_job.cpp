// Tests for the job / instance model (S5).

#include "mpss/core/job.hpp"

#include <gtest/gtest.h>

namespace mpss {
namespace {

TEST(Job, WindowAndDensity) {
  Job job{Q(2), Q(6), Q(8)};
  EXPECT_EQ(job.window(), Q(4));
  EXPECT_EQ(job.density(), Q(2));
  Job fractional{Q(0), Q(3), Q(1)};
  EXPECT_EQ(fractional.density(), Q(1, 3));
}

TEST(Instance, ValidatesJobs) {
  EXPECT_THROW(Instance({Job{Q(5), Q(5), Q(1)}}, 1), std::invalid_argument);
  EXPECT_THROW(Instance({Job{Q(6), Q(5), Q(1)}}, 1), std::invalid_argument);
  EXPECT_THROW(Instance({Job{Q(0), Q(5), Q(-1)}}, 1), std::invalid_argument);
  EXPECT_THROW(Instance({Job{Q(0), Q(5), Q(1)}}, 0), std::invalid_argument);
  EXPECT_NO_THROW(Instance({Job{Q(0), Q(5), Q(0)}}, 1));  // zero work is legal
}

TEST(Instance, Accessors) {
  Instance instance({Job{Q(0), Q(4), Q(2)}, Job{Q(1), Q(3), Q(5)}}, 3);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_EQ(instance.machines(), 3u);
  EXPECT_EQ(instance.job(1).work, Q(5));
  EXPECT_EQ(instance.total_work(), Q(7));
  EXPECT_THROW((void)instance.job(2), std::out_of_range);
}

TEST(Instance, Horizon) {
  Instance instance({Job{Q(3), Q(9), Q(1)}, Job{Q(1), Q(4), Q(1)}}, 1);
  EXPECT_EQ(instance.horizon_start(), Q(1));
  EXPECT_EQ(instance.horizon_end(), Q(9));
  Instance empty({}, 2);
  EXPECT_EQ(empty.horizon_start(), Q(0));
  EXPECT_EQ(empty.horizon_end(), Q(0));
}

TEST(Instance, IntegralTimesDetection) {
  EXPECT_TRUE(Instance({Job{Q(0), Q(4), Q(1, 2)}}, 1).has_integral_times());
  EXPECT_FALSE(Instance({Job{Q(1, 2), Q(4), Q(1)}}, 1).has_integral_times());
  EXPECT_FALSE(Instance({Job{Q(0), Q(7, 3), Q(1)}}, 1).has_integral_times());
}

TEST(Instance, ScaledToIntegralTimes) {
  Instance fractional({Job{Q(1, 2), Q(3, 2), Q(1)}, Job{Q(0), Q(5, 3), Q(2)}}, 2);
  Instance scaled = fractional.scaled_to_integral_times();
  EXPECT_TRUE(scaled.has_integral_times());
  // lcm(2, 2, 1, 3) = 6.
  EXPECT_EQ(scaled.job(0).release, Q(3));
  EXPECT_EQ(scaled.job(0).deadline, Q(9));
  EXPECT_EQ(scaled.job(0).work, Q(6));
  EXPECT_EQ(scaled.job(1).deadline, Q(10));
  EXPECT_EQ(scaled.machines(), 2u);
  // Already integral: unchanged.
  Instance integral({Job{Q(0), Q(2), Q(1, 3)}}, 1);
  Instance same = integral.scaled_to_integral_times();
  EXPECT_EQ(same.job(0).deadline, Q(2));
  EXPECT_EQ(same.job(0).work, Q(1, 3));
}

TEST(Instance, WithMachines) {
  Instance instance({Job{Q(0), Q(4), Q(2)}}, 3);
  Instance more = instance.with_machines(8);
  EXPECT_EQ(more.machines(), 8u);
  EXPECT_EQ(more.size(), 1u);
  EXPECT_EQ(instance.machines(), 3u);  // original untouched
}

TEST(Instance, SummaryMentionsKeyFigures) {
  Instance instance({Job{Q(0), Q(4), Q(2)}}, 3);
  std::string summary = instance.summary();
  EXPECT_NE(summary.find("n=1"), std::string::npos);
  EXPECT_NE(summary.find("m=3"), std::string::npos);
  EXPECT_NE(summary.find("W=2"), std::string::npos);
}

}  // namespace
}  // namespace mpss
