// Tests for schedule metrics (preemption / migration accounting).

#include "mpss/core/metrics.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Metrics, EmptySchedule) {
  Schedule schedule(3);
  auto metrics = schedule_metrics(schedule);
  EXPECT_EQ(metrics.scheduled_jobs, 0u);
  EXPECT_EQ(metrics.segments, 0u);
  EXPECT_EQ(metrics.preemptions, 0u);
  EXPECT_EQ(metrics.migrations, 0u);
  EXPECT_EQ(metrics.busy_time, Q(0));
}

TEST(Metrics, SingleUninterruptedJob) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(2), 7});
  auto metrics = schedule_metrics(schedule);
  EXPECT_EQ(metrics.scheduled_jobs, 1u);
  EXPECT_EQ(metrics.segments, 1u);
  EXPECT_EQ(metrics.preemptions, 0u);
  EXPECT_EQ(metrics.migrations, 0u);
  EXPECT_EQ(metrics.busy_time, Q(4));
  EXPECT_EQ(metrics.peak_machine_time, Q(4));
}

TEST(Metrics, AdjacentSlicesMerge) {
  // Assembly artifacts (two abutting slices, same machine/speed) count as one.
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(0, Slice{Q(2), Q(4), Q(1), 0});
  auto metrics = schedule_metrics(schedule);
  EXPECT_EQ(metrics.segments, 1u);
  EXPECT_EQ(metrics.preemptions, 0u);
}

TEST(Metrics, SpeedChangeIsASegmentBoundary) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(0, Slice{Q(2), Q(4), Q(2), 0});
  auto metrics = schedule_metrics(schedule);
  EXPECT_EQ(metrics.segments, 2u);
  EXPECT_EQ(metrics.preemptions, 1u);
  EXPECT_EQ(metrics.migrations, 0u);  // same machine
}

TEST(Metrics, MigrationCountsMachineSwitches) {
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  schedule.add(1, Slice{Q(2), Q(3), Q(1), 0});  // gap + machine switch
  schedule.add(0, Slice{Q(4), Q(5), Q(1), 0});  // back again
  auto metrics = schedule_metrics(schedule);
  EXPECT_EQ(metrics.segments, 3u);
  EXPECT_EQ(metrics.preemptions, 2u);
  EXPECT_EQ(metrics.migrations, 2u);
  EXPECT_EQ(metrics.migrated_jobs, 1u);
}

TEST(Metrics, WrapSplitCountsAsOneMigration) {
  // A McNaughton wrap split: end of machine 0, start of machine 1 -- one
  // migration, one preemption (distinct time ranges).
  Schedule schedule(2);
  schedule.add(0, Slice{Q(1, 2), Q(1), Q(1), 0});
  schedule.add(1, Slice{Q(0), Q(1, 2), Q(1), 0});
  auto metrics = schedule_metrics(schedule);
  EXPECT_EQ(metrics.migrations, 1u);
  EXPECT_EQ(metrics.migrated_jobs, 1u);
}

TEST(Metrics, OptimalSchedulesUseBoundedMigration) {
  // Empirical observation the module exists for: optimal schedules migrate, but
  // only a bounded amount (each wrap split migrates a job at most once per
  // interval). Sanity: migrations <= segments, busy_time matches work/speed sums.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 15,
                                          .max_window = 7, .max_work = 5}, seed);
    auto result = optimal_schedule(instance);
    auto metrics = schedule_metrics(result.schedule);
    EXPECT_LE(metrics.migrations, metrics.segments);
    EXPECT_LE(metrics.migrated_jobs, metrics.scheduled_jobs);
    Q expected_busy;
    for (std::size_t k = 0; k < instance.size(); ++k) {
      if (instance.job(k).work.sign() > 0) {
        expected_busy += instance.job(k).work / result.speed_of_job(k);
      }
    }
    EXPECT_EQ(metrics.busy_time, expected_busy) << seed;
  }
}

}  // namespace
}  // namespace mpss
