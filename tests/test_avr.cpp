// Tests for AVR(m) (Section 3.2, Fig. 3 / Theorem 3).

#include "mpss/online/avr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/core/optimal.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Avr, SingleJobSmearsAtDensity) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 2);
  auto result = avr_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  // Exactly delta = 2 units of work in each of the 4 unit intervals.
  for (std::int64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(result.schedule.work_on_in(0, Q(t), Q(t + 1)), Q(2));
  }
}

TEST(Avr, RequiresIntegralTimes) {
  Instance fractional({Job{Q(1, 2), Q(2), Q(1)}}, 1);
  EXPECT_THROW((void)avr_schedule(fractional), std::invalid_argument);
  // The documented remedy works.
  auto scaled = fractional.scaled_to_integral_times();
  EXPECT_NO_THROW((void)avr_schedule(scaled));
}

TEST(Avr, UniformBranchBalancesLoad) {
  // 4 equal-density jobs on 2 machines: no peeling, uniform speed Delta/m.
  std::vector<Job> jobs(4, Job{Q(0), Q(2), Q(2)});  // density 1 each
  Instance instance(jobs, 2);
  auto result = avr_schedule(instance);
  EXPECT_EQ(result.peel_events, 0u);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  // Every machine runs at speed 2 = Delta/m everywhere.
  EXPECT_EQ(result.schedule.max_speed(), Q(2));
  AlphaPower p(2.0);
  EXPECT_NEAR(result.schedule.energy(p), 2 * 4 * 2.0, 1e-9);
}

TEST(Avr, PeelsDominantDensityJob) {
  // One job of density 10 and two of density 1 on 2 machines: the dense job gets
  // its own processor (10 > 12/2), the rest share the other at speed 2.
  Instance instance({Job{Q(0), Q(1), Q(10)}, Job{Q(0), Q(1), Q(1)},
                     Job{Q(0), Q(1), Q(1)}}, 2);
  auto result = avr_schedule(instance);
  EXPECT_EQ(result.peel_events, 1u);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  auto speeds = result.schedule.speeds_at(Q(1, 2));
  EXPECT_EQ(speeds[0], Q(10));
  EXPECT_EQ(speeds[1], Q(2));
}

TEST(Avr, CascadingPeels) {
  // Densities 8, 4, 1, 1 on 3 machines: 8 > 14/3 peels; then 4 > 6/2 peels; the
  // two unit jobs share the last machine at the uniform speed Delta'/|M| = 2.
  Instance instance({Job{Q(0), Q(1), Q(8)}, Job{Q(0), Q(1), Q(4)},
                     Job{Q(0), Q(1), Q(1)}, Job{Q(0), Q(1), Q(1)}}, 3);
  auto result = avr_schedule(instance);
  EXPECT_EQ(result.peel_events, 2u);
  auto speeds = result.schedule.speeds_at(Q(1, 2));
  EXPECT_EQ(speeds[0], Q(8));
  EXPECT_EQ(speeds[1], Q(4));
  EXPECT_EQ(speeds[2], Q(2));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Avr, SingleMachineMatchesDensitySum) {
  // AVR(1): machine speed is the total active density in every unit interval.
  Instance instance({Job{Q(0), Q(4), Q(4)}, Job{Q(1), Q(3), Q(4)}, Job{Q(2), Q(6), Q(8)}},
                    1);
  auto result = avr_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  auto profile = avr_density_profile(instance);
  ASSERT_EQ(profile.size(), 6u);
  AlphaPower p(2.0);
  double expected = 0.0;
  for (const Q& density : profile) expected += std::pow(density.to_double(), 2.0);
  EXPECT_NEAR(result.schedule.energy(p), expected, 1e-9);
}

TEST(Avr, DensityProfileValues) {
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(1), Q(3), Q(4)}}, 1);
  auto profile = avr_density_profile(instance);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], Q(1));
  EXPECT_EQ(profile[1], Q(3));
  EXPECT_EQ(profile[2], Q(2));
}

TEST(Avr, AlwaysFeasibleOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Instance instance = generate_uniform({.jobs = 12, .machines = 3, .horizon = 20,
                                          .max_window = 9, .max_work = 7}, seed);
    auto result = avr_schedule(instance);
    auto report = check_schedule(instance, result.schedule);
    ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                 << report.violations.front();
  }
}

TEST(Avr, RespectsTheorem3BoundOnRandomInstances) {
  for (double alpha : {1.5, 2.0, 3.0}) {
    AlphaPower p(alpha);
    double bound = avr_multi_competitive_bound(alpha);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 15,
                                            .max_window = 7, .max_work = 5}, seed);
      double ratio = avr_energy(instance, p) / optimal_energy(instance, p);
      EXPECT_GE(ratio, 1.0 - 1e-9) << "seed " << seed;
      EXPECT_LE(ratio, bound + 1e-9) << "seed " << seed << " alpha " << alpha;
    }
  }
}

TEST(Avr, DecompositionInequalityFromProof) {
  // Inequality (9) of the paper: E_AVR(m) <= m^(1-a) * sum_t Delta_t^a
  //                                         + sum_i delta_i^a * (d_i - r_i).
  AlphaPower p(2.0);
  const double alpha = 2.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                         .machines = 4, .horizon = 20,
                                         .burst_window = 5, .max_work = 6}, seed);
    double lhs = avr_energy(instance, p);
    double m = static_cast<double>(instance.machines());
    double avr1 = 0.0;
    for (const Q& density : avr_density_profile(instance)) {
      avr1 += std::pow(density.to_double(), alpha);
    }
    double per_job = 0.0;
    for (const Job& job : instance.jobs()) {
      if (job.work.sign() > 0) {
        per_job += std::pow(job.density().to_double(), alpha) *
                   job.window().to_double();
      }
    }
    EXPECT_LE(lhs, std::pow(m, 1.0 - alpha) * avr1 + per_job + 1e-9)
        << "seed " << seed;
  }
}

TEST(Avr, WorkConservationPerUnitInterval) {
  // The defining property of AVR: delta_i units of each active job per interval.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_agreeable({.jobs = 8, .machines = 2, .horizon = 12,
                                            .min_window = 2, .max_window = 6,
                                            .max_work = 5}, seed);
    auto result = avr_schedule(instance);
    for (std::size_t k = 0; k < instance.size(); ++k) {
      const Job& job = instance.job(k);
      for (std::int64_t t = job.release.num().to_int64();
           t < job.deadline.num().to_int64(); ++t) {
        EXPECT_EQ(result.schedule.work_on_in(k, Q(t), Q(t + 1)), job.density())
            << "seed " << seed << " job " << k << " t " << t;
      }
    }
  }
}

TEST(Avr, EmptyAndZeroWorkInstances) {
  Instance empty({}, 3);
  EXPECT_EQ(avr_schedule(empty).schedule.slice_count(), 0u);
  Instance zero({Job{Q(0), Q(5), Q(0)}}, 2);
  auto result = avr_schedule(zero);
  EXPECT_EQ(result.schedule.slice_count(), 0u);
  EXPECT_TRUE(check_schedule(zero, result.schedule).feasible);
}

TEST(Avr, SingleActiveJobManyMachinesPeelsAlone) {
  // One active job with 3 machines: it is denser than Delta/3, so it runs alone.
  Instance instance({Job{Q(0), Q(2), Q(6)}}, 3);
  auto result = avr_schedule(instance);
  EXPECT_EQ(result.peel_events, 2u);  // once per unit interval
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  EXPECT_EQ(result.schedule.max_speed(), Q(3));
}

}  // namespace
}  // namespace mpss
