// Structural lemmas of Section 3.1's analysis, checked directly on the offline
// algorithm's output for common-release instances (the setting of OA(m)'s
// re-planning: all available jobs share the current time as release).
//
//   Lemma 7/10: when a new job arrives -- equivalently, when a job's processing
//               volume grows from 0 -- no existing job slows down.
//   Lemma 11:   jobs in sets strictly slower than the set containing the grown
//               job keep exactly their speeds.
//   Lemma 8:    the minimum machine speed at any time never decreases.

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

std::vector<Job> random_common_release(Xoshiro256& rng, std::size_t jobs,
                                       std::int64_t horizon, std::int64_t max_work) {
  std::vector<Job> out;
  out.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    out.push_back(Job{Q(0), Q(rng.uniform_int(1, horizon)),
                      Q(rng.uniform_int(1, max_work))});
  }
  return out;
}

TEST(ArrivalLemmas, Lemma7SpeedsNeverDropOnArrival) {
  Xoshiro256 rng(71);
  for (int round = 0; round < 25; ++round) {
    std::size_t machines = 1 + rng.below(4);
    auto jobs = random_common_release(rng, 6 + rng.below(6), 12, 8);
    auto before = optimal_schedule(Instance(jobs, machines));

    // A new job arrives (still at release 0 -- OA's replanning view).
    jobs.push_back(Job{Q(0), Q(rng.uniform_int(1, 12)), Q(rng.uniform_int(1, 8))});
    auto after = optimal_schedule(Instance(jobs, machines));

    for (std::size_t k = 0; k + 1 < jobs.size(); ++k) {
      EXPECT_LE(before.speed_of_job(k), after.speed_of_job(k))
          << "round " << round << " job " << k << " slowed down on arrival";
    }
  }
}

TEST(ArrivalLemmas, Lemma10SpeedsNeverDropWhenWorkGrows) {
  Xoshiro256 rng(72);
  for (int round = 0; round < 25; ++round) {
    std::size_t machines = 1 + rng.below(3);
    auto jobs = random_common_release(rng, 5 + rng.below(6), 10, 6);
    auto before = optimal_schedule(Instance(jobs, machines));

    std::size_t grown = rng.below(jobs.size());
    jobs[grown].work += Q(rng.uniform_int(1, 4), rng.uniform_int(1, 3));
    auto after = optimal_schedule(Instance(jobs, machines));

    for (std::size_t k = 0; k < jobs.size(); ++k) {
      EXPECT_LE(before.speed_of_job(k), after.speed_of_job(k))
          << "round " << round << " job " << k;
    }
    EXPECT_LT(before.speed_of_job(grown), after.speed_of_job(grown) + Q(1))
        << "grown job cannot slow down";
  }
}

TEST(ArrivalLemmas, Lemma11SlowerSetsKeepTheirSpeedsUnderSmallGrowth) {
  Xoshiro256 rng(73);
  int informative_rounds = 0;
  for (int round = 0; round < 40 && informative_rounds < 12; ++round) {
    std::size_t machines = 1 + rng.below(3);
    auto jobs = random_common_release(rng, 6 + rng.below(5), 10, 6);
    auto before = optimal_schedule(Instance(jobs, machines));
    if (before.phases.size() < 2) continue;

    // Grow a job of the FASTEST set by a tiny epsilon: sets strictly slower than
    // it must keep exactly their speeds (Lemma 11 with i0 = 1).
    std::size_t grown = before.phases.front().jobs.front();
    Q epsilon(1, 1000000);
    jobs[grown].work += epsilon;
    auto after = optimal_schedule(Instance(jobs, machines));

    bool informative = false;
    for (std::size_t i = 1; i < before.phases.size(); ++i) {
      for (std::size_t k : before.phases[i].jobs) {
        EXPECT_EQ(before.speed_of_job(k), after.speed_of_job(k))
            << "round " << round << " job " << k
            << " in a slower set changed speed";
        informative = true;
      }
    }
    if (informative) ++informative_rounds;
  }
  EXPECT_GE(informative_rounds, 12) << "test corpus never had 2+ phases";
}

TEST(ArrivalLemmas, Lemma8MinimumMachineSpeedNeverDecreases) {
  Xoshiro256 rng(74);
  for (int round = 0; round < 15; ++round) {
    std::size_t machines = 2 + rng.below(3);
    auto jobs = random_common_release(rng, 8, 10, 6);
    Instance before_instance(jobs, machines);
    auto before = optimal_schedule(before_instance);
    jobs.push_back(Job{Q(0), Q(rng.uniform_int(1, 10)), Q(rng.uniform_int(1, 6))});
    Instance after_instance(jobs, machines);
    auto after = optimal_schedule(after_instance);

    // Probe the minimum machine speed at the midpoints of the refined interval
    // set (atomic for both schedules).
    IntervalDecomposition intervals(after_instance.jobs());
    for (std::size_t j = 0; j < intervals.count(); ++j) {
      Q midpoint = (intervals.start(j) + intervals.end(j)) / Q(2);
      Q min_before(0), min_after(0);
      bool first = true;
      for (const Q& speed : before.schedule.speeds_at(midpoint)) {
        min_before = first ? speed : min(min_before, speed);
        first = false;
      }
      first = true;
      for (const Q& speed : after.schedule.speeds_at(midpoint)) {
        min_after = first ? speed : min(min_after, speed);
        first = false;
      }
      EXPECT_LE(min_before, min_after)
          << "round " << round << " t=" << midpoint.to_string();
    }
  }
}

}  // namespace
}  // namespace mpss
