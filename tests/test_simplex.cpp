// Tests for the two-phase simplex LP solver (S4).

#include "mpss/lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/util/random.hpp"

namespace mpss {
namespace {

constexpr double kTol = 1e-7;

TEST(Simplex, TrivialBoundedMinimum) {
  // min x  s.t. x >= 3  ->  x = 3.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_row({{0, 1.0}}, Relation::kGreaterEqual, 3.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, kTol);
  EXPECT_NEAR(sol.values[0], 3.0, kTol);
}

TEST(Simplex, ClassicTwoVariableProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of the negation).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.add_row({{0, 1.0}}, Relation::kLessEqual, 4.0);
  lp.add_row({{1, 2.0}}, Relation::kLessEqual, 12.0);
  lp.add_row({{0, 3.0}, {1, 2.0}}, Relation::kLessEqual, 18.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, kTol);
  EXPECT_NEAR(sol.values[0], 2.0, kTol);
  EXPECT_NEAR(sol.values[1], 6.0, kTol);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x - y = 2  ->  x=6, y=4, objective 14.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.add_row({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 10.0);
  lp.add_row({{0, 1.0}, {1, -1.0}}, Relation::kEqual, 2.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.values[0], 6.0, kTol);
  EXPECT_NEAR(sol.values[1], 4.0, kTol);
  EXPECT_NEAR(sol.objective, 14.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_row({{0, 1.0}}, Relation::kLessEqual, 1.0);
  lp.add_row({{0, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpSolution::Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with x only bounded below.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.add_row({{0, 1.0}}, Relation::kGreaterEqual, 0.0);
  EXPECT_EQ(solve_lp(lp).status, LpSolution::Status::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -3 is x >= 3.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_row({{0, -1.0}}, Relation::kLessEqual, -3.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.values[0], 3.0, kTol);
}

TEST(Simplex, RedundantConstraintHandled) {
  // Duplicate equality rows force a leftover artificial in the basis.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.add_row({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 4.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, Relation::kEqual, 8.0);  // same hyperplane
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degenerate corner; Bland's rule must not cycle.
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {-100.0, -10.0, -1.0};
  lp.add_row({{0, 1.0}}, Relation::kLessEqual, 1.0);
  lp.add_row({{0, 20.0}, {1, 1.0}}, Relation::kLessEqual, 100.0);
  lp.add_row({{0, 200.0}, {1, 20.0}, {2, 1.0}}, Relation::kLessEqual, 10000.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective, -10000.0, 1e-5);
}

TEST(Simplex, ZeroObjectiveReturnsFeasiblePoint) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {0.0, 0.0};
  lp.add_row({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 5.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.values[0] + sol.values[1], 5.0, kTol);
  EXPECT_GE(sol.values[0], -kTol);
  EXPECT_GE(sol.values[1], -kTol);
}

TEST(Simplex, RejectsMalformedInput) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0};  // wrong size
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
  lp.objective = {1.0, 1.0};
  lp.add_row({{5, 1.0}}, Relation::kEqual, 1.0);  // variable out of range
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

TEST(Simplex, TransportationProblem) {
  // 2 supplies (10, 20), 2 demands (15, 15); costs c11=1 c12=4 c21=2 c22=1.
  // Optimal: x11=10, x21=5, x22=15 -> cost 10 + 10 + 15 = 35.
  LpProblem lp;
  lp.num_vars = 4;  // x11 x12 x21 x22
  lp.objective = {1.0, 4.0, 2.0, 1.0};
  lp.add_row({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 10.0);
  lp.add_row({{2, 1.0}, {3, 1.0}}, Relation::kEqual, 20.0);
  lp.add_row({{0, 1.0}, {2, 1.0}}, Relation::kEqual, 15.0);
  lp.add_row({{1, 1.0}, {3, 1.0}}, Relation::kEqual, 15.0);
  auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective, 35.0, kTol);
}

TEST(Simplex, DifferentialAgainstVertexEnumeration) {
  // Random bounded 2-variable LPs: the optimum sits at a vertex of the feasible
  // polygon, which a brute-force intersection enumeration finds independently.
  Xoshiro256 rng(404);
  for (int round = 0; round < 200; ++round) {
    struct Line {
      double a, b, c;  // a*x + b*y <= c
    };
    std::vector<Line> lines;
    // Box constraints keep everything bounded and feasible (0,0 is inside).
    const double box = rng.uniform(2.0, 10.0);
    lines.push_back({1.0, 0.0, box});
    lines.push_back({0.0, 1.0, box});
    std::size_t extra = rng.below(3);
    for (std::size_t i = 0; i < extra; ++i) {
      lines.push_back({rng.uniform(0.1, 3.0), rng.uniform(0.1, 3.0),
                       rng.uniform(1.0, 12.0)});
    }
    double cx = rng.uniform(-5.0, 5.0);
    double cy = rng.uniform(-5.0, 5.0);

    LpProblem lp;
    lp.num_vars = 2;
    lp.objective = {cx, cy};
    for (const Line& line : lines) {
      lp.add_row({{0, line.a}, {1, line.b}}, Relation::kLessEqual, line.c);
    }
    auto solution = solve_lp(lp);
    ASSERT_EQ(solution.status, LpSolution::Status::kOptimal) << round;

    // Brute force: intersect every pair of boundary lines (incl. the axes).
    std::vector<Line> boundaries = lines;
    boundaries.push_back({-1.0, 0.0, 0.0});  // x >= 0
    boundaries.push_back({0.0, -1.0, 0.0});  // y >= 0
    double best = 0.0;  // (0,0) is feasible
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      for (std::size_t j = i + 1; j < boundaries.size(); ++j) {
        double det = boundaries[i].a * boundaries[j].b -
                     boundaries[j].a * boundaries[i].b;
        if (std::abs(det) < 1e-9) continue;
        double x = (boundaries[i].c * boundaries[j].b -
                    boundaries[j].c * boundaries[i].b) / det;
        double y = (boundaries[i].a * boundaries[j].c -
                    boundaries[j].a * boundaries[i].c) / det;
        if (x < -1e-9 || y < -1e-9) continue;
        bool feasible = true;
        for (const Line& line : lines) {
          feasible &= line.a * x + line.b * y <= line.c + 1e-7;
        }
        if (feasible) best = std::min(best, cx * x + cy * y);
      }
    }
    EXPECT_NEAR(solution.objective, best, 1e-5 * (1.0 + std::abs(best))) << round;
  }
}

TEST(Simplex, StatusNames) {
  LpSolution sol;
  sol.status = LpSolution::Status::kOptimal;
  EXPECT_EQ(sol.status_name(), "optimal");
  sol.status = LpSolution::Status::kInfeasible;
  EXPECT_EQ(sol.status_name(), "infeasible");
  sol.status = LpSolution::Status::kUnbounded;
  EXPECT_EQ(sol.status_name(), "unbounded");
}

}  // namespace
}  // namespace mpss
