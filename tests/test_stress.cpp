// Randomized stress suite: broad cross-validation rounds over randomly shaped
// instances (random generator parameters, not just random seeds). Complements the
// per-module tests with diversity; runtime is budgeted to a few seconds.

#include <gtest/gtest.h>

#include "mpss/core/lower_bounds.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/yds.hpp"
#include "mpss/ext/bounded_speed.hpp"
#include "mpss/nomig/nonmigratory.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/random.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

/// Instance with randomly drawn shape parameters (n, m, horizon, window, work).
Instance random_shape_instance(Xoshiro256& rng) {
  UniformWorkload config;
  config.jobs = 2 + rng.below(12);
  config.machines = 1 + rng.below(5);
  config.horizon = rng.uniform_int(4, 30);
  config.max_window = rng.uniform_int(1, config.horizon);
  config.max_work = rng.uniform_int(1, 12);
  return generate_uniform(config, rng());
}

TEST(Stress, OptimalFeasibleAndCertified) {
  Xoshiro256 rng(0xA11CE);
  AlphaPower p(2.0);
  for (int round = 0; round < 60; ++round) {
    Instance instance = random_shape_instance(rng);
    auto result = optimal_schedule(instance);
    auto report = check_schedule(instance, result.schedule);
    ASSERT_TRUE(report.feasible)
        << instance.summary() << " round " << round << ": "
        << report.violations.front();
    double energy = result.schedule.energy(p);
    EXPECT_GE(energy, best_lower_bound(instance, p, 2.0) - 1e-9)
        << instance.summary();
    // Upper certificate: round-robin pinning is always feasible and >= OPT.
    EXPECT_LE(energy, nonmigratory_round_robin(instance, p).energy + 1e-9)
        << instance.summary();
  }
}

TEST(Stress, SingleMachineAgreesWithYdsEverywhere) {
  Xoshiro256 rng(0xBEEF);
  AlphaPower p(2.7);
  for (int round = 0; round < 40; ++round) {
    UniformWorkload config;
    config.jobs = 2 + rng.below(10);
    config.machines = 1;
    config.horizon = rng.uniform_int(4, 24);
    config.max_window = rng.uniform_int(1, config.horizon);
    config.max_work = rng.uniform_int(1, 9);
    Instance instance = generate_uniform(config, rng());
    auto flow_result = optimal_schedule(instance);
    auto yds = yds_schedule(instance);
    for (std::size_t k = 0; k < instance.size(); ++k) {
      ASSERT_EQ(flow_result.speed_of_job(k), yds.job_speed[k])
          << instance.summary() << " job " << k << " round " << round;
    }
    (void)p;
  }
}

TEST(Stress, OnlineAlgorithmsStayInsideTheirBounds) {
  Xoshiro256 rng(0xC0FFEE);
  for (int round = 0; round < 25; ++round) {
    Instance instance = random_shape_instance(rng);
    double alpha = 1.2 + rng.uniform01() * 1.8;  // [1.2, 3.0)
    AlphaPower p(alpha);
    double opt = optimal_energy(instance, p);
    ASSERT_GT(opt, 0.0) << instance.summary();
    double oa_ratio = oa_energy(instance, p) / opt;
    double avr_ratio = avr_energy(instance, p) / opt;
    EXPECT_GE(oa_ratio, 1.0 - 1e-9) << instance.summary() << " alpha " << alpha;
    EXPECT_LE(oa_ratio, oa_competitive_bound(alpha) + 1e-9)
        << instance.summary() << " alpha " << alpha;
    EXPECT_GE(avr_ratio, 1.0 - 1e-9) << instance.summary();
    EXPECT_LE(avr_ratio, avr_multi_competitive_bound(alpha) + 1e-9)
        << instance.summary() << " alpha " << alpha;
  }
}

TEST(Stress, MinimalPeakSpeedIdentity) {
  Xoshiro256 rng(0xD00D);
  for (int round = 0; round < 25; ++round) {
    Instance instance = random_shape_instance(rng);
    Q peak = minimal_peak_speed(instance);
    if (peak.is_zero()) continue;
    EXPECT_TRUE(feasible_with_cap(instance, peak)) << instance.summary();
    EXPECT_FALSE(feasible_with_cap(instance, peak * Q(9999, 10000)))
        << instance.summary();
  }
}

TEST(Stress, FractionalTimesEndToEnd) {
  // Rational releases/deadlines/works through the full offline pipeline.
  Xoshiro256 rng(0xFEED);
  AlphaPower p(2.0);
  for (int round = 0; round < 30; ++round) {
    std::vector<Job> jobs;
    std::size_t n = 2 + rng.below(7);
    for (std::size_t i = 0; i < n; ++i) {
      Q release(rng.uniform_int(0, 20), rng.uniform_int(1, 4));
      Q window(rng.uniform_int(1, 12), rng.uniform_int(1, 3));
      Q work(rng.uniform_int(1, 10), rng.uniform_int(1, 5));
      jobs.push_back(Job{release, release + window, work});
    }
    Instance instance(jobs, 1 + rng.below(3));
    auto result = optimal_schedule(instance);
    auto report = check_schedule(instance, result.schedule);
    ASSERT_TRUE(report.feasible) << instance.summary() << ": "
                                 << report.violations.front();
    // Scaling times to integers scales energy by the known power of the factor
    // only if works scale too; here just check the scaled instance also solves.
    Instance scaled = instance.scaled_to_integral_times();
    auto scaled_result = optimal_schedule(scaled);
    EXPECT_TRUE(check_schedule(scaled, scaled_result.schedule).feasible);
    (void)p;
  }
}

TEST(Stress, ZeroAndDegenerateShapes) {
  AlphaPower p(2.0);
  // All-zero works.
  Instance zeros({Job{Q(0), Q(5), Q(0)}, Job{Q(2), Q(3), Q(0)}}, 3);
  EXPECT_EQ(optimal_schedule(zeros).schedule.slice_count(), 0u);
  EXPECT_DOUBLE_EQ(oa_energy(zeros, p), 0.0);
  EXPECT_DOUBLE_EQ(avr_energy(zeros, p), 0.0);
  // Many more machines than jobs.
  Instance wide({Job{Q(0), Q(1), Q(3)}}, 64);
  EXPECT_TRUE(check_schedule(wide, optimal_schedule(wide).schedule).feasible);
  // Heavily contended single interval.
  std::vector<Job> pile(12, Job{Q(0), Q(1), Q(1)});
  Instance contended(pile, 2);
  auto result = optimal_schedule(contended);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].speed, Q(6));  // 12 work over 2 machine-units
  EXPECT_TRUE(check_schedule(contended, result.schedule).feasible);
}

}  // namespace
}  // namespace mpss
