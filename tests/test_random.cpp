// Tests for the xoshiro256** PRNG substrate.

#include "mpss/util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mpss {
namespace {

TEST(Random, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Random, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  // Small bounds hit every residue.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Random, UniformIntInclusiveRange) {
  Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, Uniform01InHalfOpenRange) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);  // law of large numbers sanity
}

TEST(Random, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  Xoshiro256 rng2(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.bernoulli(0.0));
    EXPECT_TRUE(rng2.bernoulli(1.0));
  }
}

TEST(Random, PermutationIsAPermutation) {
  Xoshiro256 rng(19);
  auto perm = rng.permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
  // Not the identity with overwhelming probability.
  auto other = rng.permutation(50);
  EXPECT_NE(perm, other);
}

TEST(Random, JumpCreatesDisjointStream) {
  Xoshiro256 a(23);
  Xoshiro256 b(23);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace mpss
