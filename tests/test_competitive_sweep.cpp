// Parameterized competitive-ratio sweep over the power exponent alpha: Theorems 2
// and 3 and the potential invariant, per alpha (TEST_P) on a shared seed batch.

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/online/potential.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

class AlphaSweep : public testing::TestWithParam<double> {
 protected:
  static std::vector<Instance> corpus(std::size_t machines) {
    std::vector<Instance> out;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      out.push_back(generate_bursty({.bursts = 3, .jobs_per_burst = 3,
                                     .machines = machines, .horizon = 18,
                                     .burst_window = 4, .max_work = 5}, seed));
    }
    out.push_back(generate_avr_adversary(12, machines));
    return out;
  }
};

TEST_P(AlphaSweep, Theorem2OaWithinBound) {
  const double alpha = GetParam();
  AlphaPower p(alpha);
  const double bound = oa_competitive_bound(alpha);
  for (std::size_t machines : {1u, 3u}) {
    for (const Instance& instance : corpus(machines)) {
      double ratio = oa_energy(instance, p) / optimal_energy(instance, p);
      EXPECT_GE(ratio, 1.0 - 1e-9) << instance.summary();
      EXPECT_LE(ratio, bound + 1e-9) << instance.summary();
    }
  }
}

TEST_P(AlphaSweep, Theorem3AvrWithinBound) {
  const double alpha = GetParam();
  AlphaPower p(alpha);
  const double bound = avr_multi_competitive_bound(alpha);
  for (std::size_t machines : {1u, 3u}) {
    for (const Instance& instance : corpus(machines)) {
      double ratio = avr_energy(instance, p) / optimal_energy(instance, p);
      EXPECT_GE(ratio, 1.0 - 1e-9) << instance.summary();
      EXPECT_LE(ratio, bound + 1e-9) << instance.summary();
    }
  }
}

TEST_P(AlphaSweep, PotentialInvariantHolds) {
  const double alpha = GetParam();
  for (std::size_t machines : {1u, 2u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Instance instance = generate_uniform({.jobs = 7, .machines = machines,
                                            .horizon = 12, .max_window = 6,
                                            .max_work = 4}, seed);
      auto trace = oa_potential_trace(instance, alpha, 1e-7);
      EXPECT_TRUE(trace.invariant_holds)
          << "alpha " << alpha << " m " << machines << " seed " << seed
          << " worst violation " << trace.worst_violation;
    }
  }
}

TEST_P(AlphaSweep, BoundsAreOrderedAndFinite) {
  const double alpha = GetParam();
  EXPECT_GT(oa_competitive_bound(alpha), 1.0);
  EXPECT_GT(avr_single_competitive_bound(alpha), 1.0);
  EXPECT_LT(avr_single_competitive_bound(alpha), avr_multi_competitive_bound(alpha));
  EXPECT_LE(deterministic_lower_bound(alpha), oa_competitive_bound(alpha));
}

std::string alpha_name(const testing::TestParamInfo<double>& info) {
  std::string name = "alpha" + std::to_string(info.param);
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep, testing::Values(1.25, 1.5, 2.0, 2.5, 3.0),
                         alpha_name);

}  // namespace
}  // namespace mpss
