// Hierarchical spans (S43): RAII begin/end pairing, parent tracking through
// the thread-local span stack, span-id stamping into ordinary events, the
// registry-sink fallback, per-thread independence under the ThreadPool, and
// the headline attribution property -- on a real corpus solve the root span
// covers (almost all of) the engine's reported wall time.

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/thread_pool.hpp"
#include "mpss/workload/traces.hpp"

#ifndef MPSS_DATA_DIR
#error "MPSS_DATA_DIR must point at data/corpus"
#endif

namespace mpss::obs {
namespace {

/// Spans must not leak across test cases: every test that opens spans closes
/// them before asserting, and detaches any registry sink it attached.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().attach_sink(nullptr);
    Registry::global().reset();
  }
  void TearDown() override {
    Registry::global().attach_sink(nullptr);
    Registry::global().reset();
  }
};

TEST_F(SpanTest, InactiveWithoutAnySink) {
  SpanScope span(nullptr, "no.sink");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(current_span(), 0u);
  EXPECT_DOUBLE_EQ(span.elapsed_seconds(), 0.0);
}

TEST_F(SpanTest, EmitsBeginEndPairWithMatchingIdsAndDuration) {
  MemorySink sink;
  {
    SpanScope span(&sink, "outer");
    EXPECT_TRUE(span.active());
    EXPECT_EQ(current_span(), span.id());
  }
  EXPECT_EQ(current_span(), 0u);

  auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
  EXPECT_EQ(events[1].kind, EventKind::kSpanEnd);
  EXPECT_EQ(events[0].label, "outer");
  EXPECT_EQ(events[0].a, events[1].a);  // same span id
  EXPECT_EQ(events[0].b, 0u);          // root: no parent
  EXPECT_GE(events[1].value, 0.0);     // duration in seconds
  // Span events carry timestamps even without MPSS_TRACING; end >= begin.
  EXPECT_GT(events[0].t_seconds, 0.0);
  EXPECT_GE(events[1].t_seconds, events[0].t_seconds);
}

TEST_F(SpanTest, NestingRecordsParentAndRestoresIt) {
  MemorySink sink;
  SpanId outer_id = 0;
  SpanId inner_id = 0;
  {
    SpanScope outer(&sink, "outer");
    outer_id = outer.id();
    {
      SpanScope inner(&sink, "inner");
      inner_id = inner.id();
      EXPECT_EQ(current_span(), inner_id);
      EXPECT_NE(inner_id, outer_id);
    }
    EXPECT_EQ(current_span(), outer_id);  // restored after inner closes
  }
  auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // inner's begin event carries outer as parent (b payload and span stamp).
  const TraceEvent* inner_begin = nullptr;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kSpanBegin && e.label == "inner") inner_begin = &e;
  }
  ASSERT_NE(inner_begin, nullptr);
  EXPECT_EQ(inner_begin->a, inner_id);
  EXPECT_EQ(inner_begin->b, outer_id);
  EXPECT_EQ(inner_begin->span, outer_id);
}

// ---- distributed trace context (S47) ---------------------------------------

TEST_F(SpanTest, TraceContextStampsTraceIdAndRestoresOnExit) {
  MemorySink sink;
  {
    TraceContextScope scope(TraceContext{42, 0, 0});
    EXPECT_EQ(current_trace().trace_id, 42u);
    SpanScope span(&sink, "traced");
    emit(&sink, EventKind::kCounter, "traced.event", 1);
  }
  EXPECT_EQ(current_trace().trace_id, 0u);
  for (const TraceEvent& event : sink.events()) {
    EXPECT_EQ(event.trace, 42u) << event.label;
  }
}

TEST_F(SpanTest, RootSpanAdoptsLocalParentFromContext) {
  MemorySink sink;
  TraceContextScope scope(TraceContext{42, /*local_parent=*/7, 0});
  SpanScope root(&sink, "root");
  SpanScope child(&sink, "child");
  auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].b, 7u);         // root crosses the thread boundary
  EXPECT_EQ(events[0].remote_parent, 0u);
  EXPECT_EQ(events[1].b, root.id());  // non-roots still follow the stack
}

TEST_F(SpanTest, RootSpanRecordsRemoteParentFromContext) {
  MemorySink sink;
  TraceContextScope scope(TraceContext{42, 0, /*remote_parent=*/9});
  SpanScope root(&sink, "root");
  auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  // A peer process's span id cannot become b (it lives in another id
  // namespace); it travels in remote_parent for the offline merge.
  EXPECT_EQ(events[0].b, 0u);
  EXPECT_EQ(events[0].remote_parent, 9u);
}

TEST_F(SpanTest, ParentBearingContextReRootsPastOpenWrapperSpans) {
  MemorySink sink;
  SpanScope wrapper(&sink, "pool.task");  // a worker loop's long-lived span
  {
    TraceContextScope scope(TraceContext{42, /*local_parent=*/7, 0});
    EXPECT_EQ(current_span(), 0u);  // the wrapper is stashed, not visible
    SpanScope request(&sink, "service.request");
    ASSERT_TRUE(request.active());
  }
  EXPECT_EQ(current_span(), wrapper.id());  // restored with the context
  auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);  // wrapper begin, request begin+end
  EXPECT_EQ(events[1].label, "service.request");
  EXPECT_EQ(events[1].b, 7u);  // adopted the context parent, not the wrapper
}

TEST_F(SpanTest, ParentlessContextLeavesTheSpanStackAlone) {
  MemorySink sink;
  SpanScope wrapper(&sink, "outer");
  TraceContextScope scope(TraceContext{42, 0, 0});
  SpanScope inner(&sink, "inner");
  auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].b, wrapper.id());  // ordinary nesting is untouched
  EXPECT_EQ(events[1].trace, 42u);
}

TEST_F(SpanTest, OrdinaryEmitsAreStampedWithEnclosingSpan) {
  MemorySink sink;
  emit(&sink, EventKind::kCounter, "before");
  {
    SpanScope span(&sink, "work");
    emit(&sink, EventKind::kCounter, "inside");
    ASSERT_EQ(sink.events().back().label, "inside");
    EXPECT_EQ(sink.events().back().span, span.id());
  }
  emit(&sink, EventKind::kCounter, "after");
  EXPECT_EQ(sink.events().front().span, 0u);
  EXPECT_EQ(sink.events().back().span, 0u);
}

TEST_F(SpanTest, FallsBackToRegistrySink) {
  MemorySink sink;
  Registry::global().attach_sink(&sink);
  { SpanScope span(nullptr, "via.registry"); }
  Registry::global().attach_sink(nullptr);
  EXPECT_EQ(sink.count(EventKind::kSpanBegin), 1u);
  EXPECT_EQ(sink.count(EventKind::kSpanEnd), 1u);
  EXPECT_EQ(sink.events().front().label, "via.registry");
}

TEST_F(SpanTest, ThreadsGetDistinctSpanIdsAndIndependentStacks) {
  MemorySink sink;
  constexpr std::size_t kTasks = 64;
  parallel_for(kTasks, [&sink](std::size_t) {
    SpanScope span(&sink, "task");
    emit(&sink, EventKind::kCounter, "tick");
  }, 4);

  auto events = sink.events();
  std::vector<std::uint64_t> ids;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kSpanBegin) ids.push_back(e.a);
  }
  ASSERT_EQ(ids.size(), kTasks);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());  // all distinct

  // Every tick is stamped with the begin/end pair it sits between on its own
  // thread: the stamp equals some task span, never 0.
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kCounter) {
      EXPECT_NE(e.span, 0u);
    }
  }
}

TEST_F(SpanTest, ThreadIndexIsStablePerThread) {
  std::uint64_t first = thread_index();
  EXPECT_EQ(thread_index(), first);
}

// --- Attribution: the reason spans exist. On every corpus instance the
// engine's root span must cover >= 95% of stats.wall_seconds (by construction
// the span opens before the ScopedTimer and closes after it is read, so this
// holds deterministically -- the test guards the declaration order). ---

std::vector<std::string> corpus_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(MPSS_DATA_DIR)) {
    std::string path = entry.path().string();
    const std::string suffix = ".instance.csv";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST_F(SpanTest, RootSolveSpanCoversWallTimeOnCorpus) {
  auto paths = corpus_paths();
  ASSERT_GE(paths.size(), 1u);
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Instance instance = load_instance(path);
    MemorySink sink;
    OptimalResult result = optimal_schedule(instance, OptimalOptions{}, &sink);

    double root_seconds = 0.0;
    for (const TraceEvent& e : sink.events()) {
      if (e.kind == EventKind::kSpanEnd && e.label == "optimal.solve" && e.b == 0) {
        root_seconds += e.value;
      }
    }
    EXPECT_GE(root_seconds, 0.95 * result.stats.wall_seconds);
  }
}

TEST_F(SpanTest, SolveTraceNestsRoundsUnderPhasesUnderSolve) {
  Instance instance = load_instance(corpus_paths().front());
  MemorySink sink;
  (void)optimal_schedule(instance, OptimalOptions{}, &sink);

  std::map<std::uint64_t, std::string> label_of;  // span id -> label
  std::map<std::uint64_t, std::uint64_t> parent_of;
  for (const TraceEvent& e : sink.events()) {
    if (e.kind != EventKind::kSpanBegin) continue;
    label_of[e.a] = e.label;
    parent_of[e.a] = e.b;
  }
  ASSERT_FALSE(label_of.empty());
  std::size_t rounds = 0;
  for (const auto& [id, label] : label_of) {
    if (label == "optimal.solve") {
      EXPECT_EQ(parent_of[id], 0u);
    } else if (label == "optimal.phase") {
      EXPECT_EQ(label_of.at(parent_of.at(id)), "optimal.solve");
    } else if (label == "optimal.round") {
      ++rounds;
      EXPECT_EQ(label_of.at(parent_of.at(id)), "optimal.phase");
    }
  }
  EXPECT_GE(rounds, 1u);
}

}  // namespace
}  // namespace mpss::obs
