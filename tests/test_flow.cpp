// Tests for the templated Dinic max-flow solver (S3) on int64, double and exact
// rational capacities.

#include "mpss/flow/dinic.hpp"

#include <gtest/gtest.h>

#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(Flow, SingleEdge) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  auto e = net.add_edge(s, t, 5);
  EXPECT_EQ(net.max_flow(s, t), 5);
  EXPECT_EQ(net.flow(e), 5);
  EXPECT_TRUE(net.saturated(e));
}

TEST(Flow, SeriesBottleneck) {
  FlowNetwork<std::int64_t> net;
  auto nodes = net.add_nodes(3);
  net.add_edge(nodes, nodes + 1, 10);
  auto narrow = net.add_edge(nodes + 1, nodes + 2, 3);
  EXPECT_EQ(net.max_flow(nodes, nodes + 2), 3);
  EXPECT_TRUE(net.saturated(narrow));
}

TEST(Flow, ParallelPathsAdd) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto b = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, 4);
  net.add_edge(a, t, 4);
  net.add_edge(s, b, 6);
  net.add_edge(b, t, 5);
  EXPECT_EQ(net.max_flow(s, t), 9);
}

TEST(Flow, ClassicCrossNetwork) {
  // The textbook 6-node network with a cross edge; max flow 23.
  FlowNetwork<std::int64_t> net;
  auto v = net.add_nodes(6);
  net.add_edge(v + 0, v + 1, 16);
  net.add_edge(v + 0, v + 2, 13);
  net.add_edge(v + 1, v + 2, 10);
  net.add_edge(v + 2, v + 1, 4);
  net.add_edge(v + 1, v + 3, 12);
  net.add_edge(v + 3, v + 2, 9);
  net.add_edge(v + 2, v + 4, 14);
  net.add_edge(v + 4, v + 3, 7);
  net.add_edge(v + 3, v + 5, 20);
  net.add_edge(v + 4, v + 5, 4);
  EXPECT_EQ(net.max_flow(v + 0, v + 5), 23);
}

TEST(Flow, DisconnectedSinkGivesZero) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto mid = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, mid, 10);
  EXPECT_EQ(net.max_flow(s, t), 0);
}

TEST(Flow, ZeroCapacityEdgeCarriesNothing) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  auto e = net.add_edge(s, t, 0);
  EXPECT_EQ(net.max_flow(s, t), 0);
  EXPECT_EQ(net.flow(e), 0);
}

TEST(Flow, RejectsBadArguments) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  EXPECT_THROW((void)net.add_edge(s, 7, 1), std::invalid_argument);
  EXPECT_THROW((void)net.add_edge(s, t, -1), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(s, s), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(s, 9), std::invalid_argument);
}

TEST(Flow, FlowBeforeSolveIsAnError) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  auto e = net.add_edge(s, t, 1);
  EXPECT_THROW((void)net.flow(e), InternalError);
}

TEST(Flow, RationalCapacitiesExact) {
  FlowNetwork<Q> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, Q(1, 3));
  net.add_edge(a, t, Q(1, 2));
  EXPECT_EQ(net.max_flow(s, t), Q(1, 3));
}

TEST(Flow, RationalParallelExactSum) {
  FlowNetwork<Q> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto b = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, Q(1, 7));
  net.add_edge(a, t, Q(2, 7));
  net.add_edge(s, b, Q(3, 11));
  net.add_edge(b, t, Q(1, 11));
  EXPECT_EQ(net.max_flow(s, t), Q(1, 7) + Q(1, 11));  // = 18/77 exactly
}

TEST(Flow, DoubleCapacities) {
  FlowNetwork<double> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, 0.75);
  net.add_edge(a, t, 0.5);
  EXPECT_NEAR(net.max_flow(s, t), 0.5, 1e-9);
}

TEST(Flow, MinCutSeparatesSourceFromSink) {
  FlowNetwork<std::int64_t> net;
  auto v = net.add_nodes(4);
  net.add_edge(v + 0, v + 1, 100);
  net.add_edge(v + 1, v + 2, 1);  // the cut
  net.add_edge(v + 2, v + 3, 100);
  EXPECT_EQ(net.max_flow(v + 0, v + 3), 1);
  ActiveBitmap cut = net.min_cut_source_side(v + 0);
  ASSERT_EQ(cut.rows(), 1u);
  ASSERT_EQ(cut.cols(), net.node_count());
  EXPECT_TRUE(cut.test(0, v + 0));
  EXPECT_TRUE(cut.test(0, v + 1));
  EXPECT_FALSE(cut.test(0, v + 2));
  EXPECT_FALSE(cut.test(0, v + 3));
}

TEST(Flow, FlowConservationOnRandomBipartiteGraphs) {
  Xoshiro256 rng(3);
  for (int round = 0; round < 30; ++round) {
    // Bipartite transportation instance: L supplies, R demands.
    std::size_t left = 3 + rng.below(5);
    std::size_t right = 3 + rng.below(5);
    FlowNetwork<std::int64_t> net;
    auto s = net.add_node();
    auto l0 = net.add_nodes(left);
    auto r0 = net.add_nodes(right);
    auto t = net.add_node();
    std::int64_t supply_total = 0;
    std::vector<FlowNetwork<std::int64_t>::EdgeId> supply_edges, demand_edges;
    std::vector<std::vector<FlowNetwork<std::int64_t>::EdgeId>> cross(left);
    for (std::size_t i = 0; i < left; ++i) {
      std::int64_t cap = rng.uniform_int(1, 20);
      supply_total += cap;
      supply_edges.push_back(net.add_edge(s, l0 + i, cap));
      for (std::size_t j = 0; j < right; ++j) {
        if (rng.bernoulli(0.6)) {
          cross[i].push_back(net.add_edge(l0 + i, r0 + j, rng.uniform_int(1, 15)));
        }
      }
    }
    for (std::size_t j = 0; j < right; ++j) {
      demand_edges.push_back(net.add_edge(r0 + j, t, rng.uniform_int(1, 20)));
    }
    std::int64_t value = net.max_flow(s, t);
    EXPECT_GE(value, 0);
    EXPECT_LE(value, supply_total);
    // Conservation: flow out of source equals flow into sink.
    std::int64_t out_of_source = 0, into_sink = 0;
    for (auto e : supply_edges) out_of_source += net.flow(e);
    for (auto e : demand_edges) into_sink += net.flow(e);
    EXPECT_EQ(out_of_source, value);
    EXPECT_EQ(into_sink, value);
    // Max-flow == min-cut: every edge from the cut's source side to the sink side
    // is saturated.
    ActiveBitmap side = net.min_cut_source_side(s);
    EXPECT_TRUE(side.test(0, s));
    EXPECT_FALSE(side.test(0, t));
  }
}

TEST(FlowWarmStart, MaxFlowIsRerunnable) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto t = net.add_node();
  auto top = net.add_edge(s, a, 10);
  auto bottom = net.add_edge(a, t, 3);
  EXPECT_EQ(net.max_flow(s, t), 3);
  // A second run restarts from the empty flow, not on top of the first.
  EXPECT_EQ(net.max_flow(s, t), 3);
  EXPECT_EQ(net.flow(top), 3);
  EXPECT_EQ(net.flow(bottom), 3);
}

TEST(FlowWarmStart, SetCapacityRaisesAndResumeAugments) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, 10);
  auto narrow = net.add_edge(a, t, 3);
  EXPECT_EQ(net.max_flow(s, t), 3);
  net.set_capacity(narrow, 7);
  EXPECT_EQ(net.capacity(narrow), 7);
  // Resume continues from the carried 3 units and returns the total value.
  EXPECT_EQ(net.max_flow_resume(s, t), 7);
  EXPECT_EQ(net.flow(narrow), 7);
}

TEST(FlowWarmStart, SetCapacityKeepsFlowAndRejectsUndercut) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  auto e = net.add_edge(s, t, 5);
  EXPECT_EQ(net.max_flow(s, t), 5);
  net.set_capacity(e, 5);  // no-op at the boundary
  EXPECT_EQ(net.flow(e), 5);
  EXPECT_THROW(net.set_capacity(e, 4), std::invalid_argument);
}

TEST(FlowWarmStart, RetractFlowFreesCapacityForResume) {
  // Two parallel paths; retract the flow on one and reroute via resume.
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto b = net.add_node();
  auto t = net.add_node();
  auto sa = net.add_edge(s, a, 4);
  auto at = net.add_edge(a, t, 4);
  auto sb = net.add_edge(s, b, 6);
  auto bt = net.add_edge(b, t, 5);
  EXPECT_EQ(net.max_flow(s, t), 9);
  // Retract the a-path end to end (layered: conservation is the caller's job).
  net.retract_flow(sa, 4);
  net.retract_flow(at, 4);
  EXPECT_EQ(net.flow(sa), 0);
  EXPECT_EQ(net.flow(at), 0);
  net.set_capacity(sa, 0);
  EXPECT_EQ(net.max_flow_resume(s, t), 5);
  EXPECT_EQ(net.flow(sb), 5);
  EXPECT_EQ(net.flow(bt), 5);
  EXPECT_THROW(net.retract_flow(bt, 6), std::invalid_argument);
}

TEST(FlowWarmStart, ResetFlowRestoresCapacities) {
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  auto e = net.add_edge(s, t, 8);
  EXPECT_EQ(net.max_flow(s, t), 8);
  net.reset_flow();
  EXPECT_EQ(net.flow(e), 0);
  EXPECT_EQ(net.max_flow_resume(s, t), 8);
}

TEST(FlowWarmStart, ResumeMatchesFromScratchOnRandomGraphs) {
  Xoshiro256 rng(11);
  for (int round = 0; round < 20; ++round) {
    std::size_t left = 3 + rng.below(4);
    std::size_t right = 3 + rng.below(4);
    FlowNetwork<std::int64_t> warm;
    FlowNetwork<std::int64_t> cold;
    auto build = [&](FlowNetwork<std::int64_t>& net,
                     std::vector<FlowNetwork<std::int64_t>::EdgeId>& supply) {
      auto s = net.add_node();
      auto l0 = net.add_nodes(left);
      auto r0 = net.add_nodes(right);
      auto t = net.add_node();
      Xoshiro256 gen(static_cast<std::uint64_t>(round) * 1000 + 17);
      for (std::size_t i = 0; i < left; ++i) {
        supply.push_back(net.add_edge(s, l0 + i, gen.uniform_int(1, 20)));
        for (std::size_t j = 0; j < right; ++j) {
          if (gen.bernoulli(0.6)) {
            (void)net.add_edge(l0 + i, r0 + j, gen.uniform_int(1, 15));
          }
        }
      }
      for (std::size_t j = 0; j < right; ++j) {
        (void)net.add_edge(r0 + j, t, gen.uniform_int(1, 20));
      }
      return std::pair{s, t};
    };
    std::vector<FlowNetwork<std::int64_t>::EdgeId> warm_supply, cold_supply;
    auto [ws, wt] = build(warm, warm_supply);
    auto [cs, ct] = build(cold, cold_supply);
    (void)warm.max_flow(ws, wt);
    // Grow a random supply edge, then warm-resume vs. solve from scratch: the
    // max-flow VALUE is unique, so the two must agree.
    std::size_t grown = rng.below(left);
    std::int64_t boost = rng.uniform_int(1, 10);
    warm.set_capacity(warm_supply[grown],
                      warm.capacity(warm_supply[grown]) + boost);
    cold.set_capacity(cold_supply[grown],
                      cold.capacity(cold_supply[grown]) + boost);
    EXPECT_EQ(warm.max_flow_resume(ws, wt), cold.max_flow(cs, ct));
  }
}

TEST(Flow, LargeLayeredGraph) {
  // 20 layers of 10 nodes; capacity 1 edges between consecutive layers.
  constexpr std::size_t kLayers = 20, kWidth = 10;
  FlowNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  std::vector<std::vector<std::size_t>> layer(kLayers);
  for (auto& nodes : layer) {
    for (std::size_t i = 0; i < kWidth; ++i) nodes.push_back(net.add_node());
  }
  for (std::size_t i = 0; i < kWidth; ++i) {
    net.add_edge(s, layer[0][i], 1);
    net.add_edge(layer[kLayers - 1][i], t, 1);
  }
  for (std::size_t l = 0; l + 1 < kLayers; ++l) {
    for (std::size_t i = 0; i < kWidth; ++i) {
      net.add_edge(layer[l][i], layer[l + 1][i], 1);
      net.add_edge(layer[l][i], layer[l + 1][(i + 1) % kWidth], 1);
    }
  }
  EXPECT_EQ(net.max_flow(s, t), static_cast<std::int64_t>(kWidth));
}

}  // namespace
}  // namespace mpss
