// Parameterized property suite: the full invariant battery, swept over
// (workload family) x (machine count) x (seed) with INSTANTIATE_TEST_SUITE_P.
// Every algorithm in the library must uphold its contract on every cell.

#include <gtest/gtest.h>

#include <ostream>

#include "mpss/core/lower_bounds.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/nomig/nonmigratory.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/workload/analysis.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

enum class Family {
  kUniform,
  kBursty,
  kLaminar,
  kAgreeable,
  kPeriodic,
  kHeavyTail,
  kSurprise,
};

struct PropertyCase {
  Family family;
  std::size_t machines;
  std::uint64_t seed;
};

const char* family_name(Family family) {
  static const char* names[] = {"uniform",  "bursty",    "laminar", "agreeable",
                                "periodic", "heavytail", "surprise"};
  return names[static_cast<int>(family)];
}

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << family_name(c.family) << "/m" << c.machines << "/s" << c.seed;
}

Instance make_instance(const PropertyCase& c) {
  switch (c.family) {
    case Family::kUniform:
      return generate_uniform({.jobs = 10, .machines = c.machines, .horizon = 18,
                               .max_window = 8, .max_work = 6}, c.seed);
    case Family::kBursty:
      return generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                              .machines = c.machines, .horizon = 21,
                              .burst_window = 4, .max_work = 5}, c.seed);
    case Family::kLaminar:
      return generate_laminar({.jobs = 10, .machines = c.machines, .depth = 3,
                               .max_work = 6}, c.seed);
    case Family::kAgreeable:
      return generate_agreeable({.jobs = 10, .machines = c.machines, .horizon = 20,
                                 .min_window = 2, .max_window = 7, .max_work = 5},
                                c.seed);
    case Family::kPeriodic:
      return generate_periodic({.tasks = 4, .machines = c.machines,
                                .hyperperiods = 1, .max_work = 4}, c.seed);
    case Family::kHeavyTail:
      return generate_heavy_tail({.jobs = 10, .machines = c.machines, .horizon = 24,
                                  .shape = 1.4, .max_work = 24}, c.seed);
    case Family::kSurprise:
      return generate_surprise({.jobs = 10, .machines = c.machines, .horizon = 18,
                                .max_work = 5, .urgent_window = 3}, c.seed);
  }
  throw std::logic_error("unreachable");
}

class PropertySweep : public testing::TestWithParam<PropertyCase> {};

TEST_P(PropertySweep, OptimalScheduleContract) {
  Instance instance = make_instance(GetParam());
  auto result = optimal_schedule(instance);

  auto report = check_schedule(instance, result.schedule);
  ASSERT_TRUE(report.feasible) << report.violations.front();

  // Lemma 1: one constant speed per job; phases partition, speeds decrease.
  for (std::size_t i = 1; i < result.phases.size(); ++i) {
    EXPECT_LT(result.phases[i].speed, result.phases[i - 1].speed);
  }
  for (std::size_t k = 0; k < instance.size(); ++k) {
    Q speed = result.speed_of_job(k);
    for (const Slice& slice : result.schedule.slices_of(k)) {
      EXPECT_EQ(slice.speed, speed);
    }
  }

  // Lemma 3 processor counts.
  const auto& intervals = result.intervals;
  std::vector<std::size_t> used(intervals.count(), 0);
  for (const PhaseInfo& phase : result.phases) {
    for (std::size_t j = 0; j < intervals.count(); ++j) {
      std::size_t active = 0;
      for (std::size_t k : phase.jobs) {
        if (intervals.active(instance.job(k), j)) ++active;
      }
      EXPECT_EQ(phase.machines_per_interval[j],
                std::min(active, instance.machines() - used[j]));
      used[j] += phase.machines_per_interval[j];
    }
  }
}

TEST_P(PropertySweep, OptimalIsSandwichedByBoundsAndHeuristics) {
  Instance instance = make_instance(GetParam());
  AlphaPower p(2.0);
  double opt = optimal_energy(instance, p);
  EXPECT_GE(opt, best_lower_bound(instance, p, 2.0) - 1e-9);
  EXPECT_LE(opt, nonmigratory_greedy(instance, p).energy + 1e-9);
  EXPECT_LE(opt, nonmigratory_round_robin(instance, p).energy + 1e-9);
}

TEST_P(PropertySweep, OaContract) {
  Instance instance = make_instance(GetParam());
  auto run = oa_schedule(instance);
  auto report = check_schedule(instance, run.schedule);
  ASSERT_TRUE(report.feasible) << report.violations.front();
  AlphaPower p(2.0);
  double ratio = run.schedule.energy(p) / optimal_energy(instance, p);
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, oa_competitive_bound(2.0) + 1e-9);
}

TEST_P(PropertySweep, AvrContract) {
  Instance instance = make_instance(GetParam());
  auto result = avr_schedule(instance);
  auto report = check_schedule(instance, result.schedule);
  ASSERT_TRUE(report.feasible) << report.violations.front();
  AlphaPower p(2.0);
  double ratio = result.schedule.energy(p) / optimal_energy(instance, p);
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, avr_multi_competitive_bound(2.0) + 1e-9);
  // AVR's peak machine speed never exceeds max(peak density / m, max density):
  // peeled jobs run at their own density, shared machines at Delta'/|M| <= Delta/m.
  auto profile = analyze(instance);
  Q max_job_density(0);
  for (const Job& job : instance.jobs()) {
    if (job.work.sign() > 0) max_job_density = max(max_job_density, job.density());
  }
  Q cap = max(profile.peak_density / Q(static_cast<std::int64_t>(instance.machines())),
              max_job_density);
  EXPECT_LE(result.schedule.max_speed(), cap);
}

std::vector<PropertyCase> sweep_cases() {
  std::vector<PropertyCase> cases;
  for (Family family : {Family::kUniform, Family::kBursty, Family::kLaminar,
                        Family::kAgreeable, Family::kPeriodic, Family::kHeavyTail,
                        Family::kSurprise}) {
    for (std::size_t machines : {1u, 2u, 4u}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        cases.push_back(PropertyCase{family, machines, seed});
      }
    }
  }
  return cases;
}

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  return std::string(family_name(info.param.family)) + "_m" +
         std::to_string(info.param.machines) + "_s" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PropertySweep, testing::ValuesIn(sweep_cases()),
                         case_name);

}  // namespace
}  // namespace mpss
