// Tests for the discrete speed-level post-processor (S18, experiment E10).

#include "mpss/ext/discrete_speeds.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(DiscreteSpeeds, ExactLevelPassesThrough) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(2), Q(3), 0});
  auto out = discretize_speeds(schedule, {Q(1), Q(3), Q(5)});
  ASSERT_EQ(out.slice_count(), 1u);
  EXPECT_EQ(out.machine(0)[0].speed, Q(3));
}

TEST(DiscreteSpeeds, SplitsBetweenAdjacentLevels) {
  // Speed 2 between levels 1 and 3: x*3 + (d-x)*1 = 2d -> x = d/2.
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(2), Q(2), 0});
  auto out = discretize_speeds(schedule, {Q(1), Q(3)});
  auto slices = out.machine(0);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].speed, Q(3));
  EXPECT_EQ(slices[0].end, Q(1));
  EXPECT_EQ(slices[1].speed, Q(1));
  EXPECT_EQ(slices[1].end, Q(2));
  EXPECT_EQ(out.work_on(0), Q(4));  // work preserved
}

TEST(DiscreteSpeeds, BelowLowestLevelShortens) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(1, 2), 0});  // work 2 at speed 1/2
  auto out = discretize_speeds(schedule, {Q(1), Q(2)});
  auto slices = out.machine(0);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].speed, Q(1));
  EXPECT_EQ(slices[0].end, Q(2));  // 2 work at speed 1
  EXPECT_EQ(out.work_on(0), Q(2));
}

TEST(DiscreteSpeeds, AboveHighestLevelThrows) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(10), 0});
  EXPECT_THROW((void)discretize_speeds(schedule, {Q(1), Q(2)}),
               std::invalid_argument);
}

TEST(DiscreteSpeeds, ValidatesLevels) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  EXPECT_THROW((void)discretize_speeds(schedule, {}), std::invalid_argument);
  EXPECT_THROW((void)discretize_speeds(schedule, {Q(0), Q(1)}), std::invalid_argument);
  EXPECT_THROW((void)discretize_speeds(schedule, {Q(2), Q(1)}), std::invalid_argument);
}

TEST(DiscreteSpeeds, PreservesFeasibilityOnOptimalSchedules) {
  AlphaPower p(2.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 2, .horizon = 12,
                                          .max_window = 6, .max_work = 5}, seed);
    auto optimal = optimal_schedule(instance);
    Q top = optimal.schedule.max_speed() * Q(2);
    auto levels = geometric_levels(top, Q(5, 4), 12);
    Schedule discrete = discretize_speeds(optimal.schedule, levels);
    auto report = check_schedule(instance, discrete);
    ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                 << report.violations.front();
    // Discretization can only cost energy (convexity).
    double continuous = optimal.schedule.energy(p);
    double fine = discrete.energy(p);
    EXPECT_GE(fine, continuous - 1e-9) << seed;
  }
}

TEST(DiscreteSpeeds, LadderContainingAllSpeedsIsFree) {
  // When every phase speed is itself a level, discretization is the identity.
  Instance instance = generate_laminar({.jobs = 8, .machines = 2, .depth = 3,
                                        .max_work = 5}, 4);
  auto optimal = optimal_schedule(instance);
  std::vector<Q> levels;
  for (const PhaseInfo& phase : optimal.phases) levels.push_back(phase.speed);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  Schedule discrete = discretize_speeds(optimal.schedule, levels);
  AlphaPower p(3.0);
  EXPECT_NEAR(discrete.energy(p), optimal.schedule.energy(p), 1e-12);
  EXPECT_EQ(discrete.slice_count(), optimal.schedule.slice_count());
}

TEST(DiscreteSpeeds, GeometricLevelsShape) {
  auto levels = geometric_levels(Q(8), Q(2), 4);
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], Q(1));
  EXPECT_EQ(levels[1], Q(2));
  EXPECT_EQ(levels[2], Q(4));
  EXPECT_EQ(levels[3], Q(8));
  EXPECT_THROW((void)geometric_levels(Q(0), Q(2), 3), std::invalid_argument);
  EXPECT_THROW((void)geometric_levels(Q(1), Q(1), 3), std::invalid_argument);
  EXPECT_THROW((void)geometric_levels(Q(1), Q(2), 0), std::invalid_argument);
}

}  // namespace
}  // namespace mpss
