// Tests for the sleep-state extension (S22): critical speed, race-to-idle
// transformation, and the awake/asleep energy accounting.

#include "mpss/ext/sleep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Sleep, CriticalSpeedFormula) {
  // alpha = 3, C = 2: s_crit = (2/2)^(1/3) = 1.
  SleepModel model{3.0, 2.0};
  EXPECT_NEAR(model.critical_speed(), 1.0, 1e-12);
  // alpha = 2, C = 4: s_crit = 4^(1/2) = 2.
  EXPECT_NEAR((SleepModel{2.0, 4.0}).critical_speed(), 2.0, 1e-12);
  // No static power: critical speed 0 (running arbitrarily slowly is free).
  EXPECT_NEAR((SleepModel{3.0, 0.0}).critical_speed(), 0.0, 1e-12);
  EXPECT_THROW((void)(SleepModel{1.0, 1.0}).critical_speed(), std::invalid_argument);
  EXPECT_THROW((void)(SleepModel{2.0, -1.0}).critical_speed(), std::invalid_argument);
}

TEST(Sleep, CriticalSpeedMinimizesEnergyPerWork) {
  SleepModel model{2.5, 3.0};
  double s_crit = model.critical_speed();
  auto energy_per_work = [&](double s) {
    return (std::pow(s, model.alpha) + model.static_power) / s;
  };
  EXPECT_LT(energy_per_work(s_crit), energy_per_work(s_crit * 0.8));
  EXPECT_LT(energy_per_work(s_crit), energy_per_work(s_crit * 1.25));
}

TEST(Sleep, RaceToIdleCompressesSlowSlices) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(1, 2), 0});  // work 2 at speed 1/2
  Schedule raced = race_to_idle(schedule, Q(2));
  auto slices = raced.machine(0);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].speed, Q(2));
  EXPECT_EQ(slices[0].end, Q(1));  // 2 work at speed 2
  EXPECT_EQ(raced.work_on(0), Q(2));
}

TEST(Sleep, RaceToIdleLeavesFastSlicesAlone) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(5), 0});
  Schedule raced = race_to_idle(schedule, Q(2));
  EXPECT_EQ(raced.machine(0)[0], schedule.machine(0)[0]);
  EXPECT_THROW((void)race_to_idle(schedule, Q(0)), std::invalid_argument);
}

TEST(Sleep, RaceToIdlePreservesFeasibility) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 2, .horizon = 12,
                                          .max_window = 6, .max_work = 4}, seed);
    auto optimal = optimal_schedule(instance);
    SleepModel model{3.0, 1.0};
    Schedule raced = race_to_idle(optimal.schedule,
                                  critical_speed_rational(model));
    auto report = check_schedule(instance, raced);
    ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                 << report.violations.front();
  }
}

TEST(Sleep, RacingReducesSleepAwareEnergy) {
  // On a sparse schedule (slow speeds), racing to s_crit and sleeping beats
  // crawling with leakage.
  Instance instance({Job{Q(0), Q(10), Q(1)}}, 1);  // density 1/10
  auto optimal = optimal_schedule(instance);
  SleepModel model{3.0, 2.0};  // s_crit = 1 >> 1/10
  Schedule raced = race_to_idle(optimal.schedule, critical_speed_rational(model));
  EXPECT_LT(energy_with_sleep(raced, model), energy_with_sleep(optimal.schedule, model));
}

TEST(Sleep, RacingNeverHelpsWithoutSleep) {
  // Against an always-on processor, the paper's optimum is still optimal: racing
  // only raises dynamic energy while leakage is paid regardless.
  Instance instance({Job{Q(0), Q(10), Q(1)}}, 1);
  auto optimal = optimal_schedule(instance);
  SleepModel model{3.0, 2.0};
  Schedule raced = race_to_idle(optimal.schedule, critical_speed_rational(model));
  EXPECT_GE(energy_always_on(raced, model, Q(0), Q(10)),
            energy_always_on(optimal.schedule, model, Q(0), Q(10)));
}

TEST(Sleep, EnergyAccountingValues) {
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(2), 0});  // 2 time units at speed 2
  SleepModel model{2.0, 3.0};
  // With sleep: (2^2 + 3) * 2 = 14 (machine 1 sleeps for free).
  EXPECT_NEAR(energy_with_sleep(schedule, model), 14.0, 1e-12);
  // Always on over [0, 4): dynamic 8 + leakage 3 * (2 machines * 4) = 32.
  EXPECT_NEAR(energy_always_on(schedule, model, Q(0), Q(4)), 8.0 + 24.0, 1e-12);
  EXPECT_THROW((void)energy_always_on(schedule, model, Q(4), Q(0)),
               std::invalid_argument);
}

TEST(Sleep, CriticalSpeedRationalFloorsTheTrueValue) {
  SleepModel model{2.5, 3.0};
  Q rational = critical_speed_rational(model, 4096);
  EXPECT_LE(rational.to_double(), model.critical_speed() + 1e-12);
  EXPECT_GE(rational.to_double(), model.critical_speed() - 1.0 / 4096.0 - 1e-12);
  // Tiny critical speeds still give a positive floor.
  EXPECT_GT(critical_speed_rational(SleepModel{3.0, 1e-12}, 16).sign(), 0);
  EXPECT_THROW((void)critical_speed_rational(model, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mpss
