// Tests for the schedule container, energy measurement and the exact feasibility
// checker (S6).

#include "mpss/core/schedule.hpp"

#include <gtest/gtest.h>

namespace mpss {
namespace {

Instance one_job_instance() { return Instance({Job{Q(0), Q(4), Q(4)}}, 2); }

TEST(Schedule, AddValidation) {
  Schedule schedule(2);
  EXPECT_THROW(schedule.add(2, Slice{Q(0), Q(1), Q(1), 0}), std::invalid_argument);
  EXPECT_THROW(schedule.add(0, Slice{Q(1), Q(1), Q(1), 0}), std::invalid_argument);
  EXPECT_THROW(schedule.add(0, Slice{Q(0), Q(1), Q(0), 0}), std::invalid_argument);
  EXPECT_THROW(Schedule(0), std::invalid_argument);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  EXPECT_EQ(schedule.slice_count(), 1u);
}

TEST(Schedule, MachineViewIsSortedByStart) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(2), Q(3), Q(1), 0});
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 1});
  auto slices = schedule.machine(0);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].start, Q(0));
  EXPECT_EQ(slices[1].start, Q(2));
}

TEST(Schedule, WorkAccounting) {
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(3), 7});   // 6 units
  schedule.add(1, Slice{Q(2), Q(3), Q(2), 7});   // 2 units
  schedule.add(1, Slice{Q(0), Q(2), Q(1), 4});   // other job
  EXPECT_EQ(schedule.work_on(7), Q(8));
  EXPECT_EQ(schedule.work_on(4), Q(2));
  EXPECT_EQ(schedule.work_on(99), Q(0));
  EXPECT_EQ(schedule.work_on_in(7, Q(1), Q(5, 2)), Q(3) + Q(1));  // half slices
}

TEST(Schedule, SlicesOfGathersAcrossMachines) {
  Schedule schedule(3);
  schedule.add(2, Slice{Q(4), Q(5), Q(1), 1});
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 1});
  schedule.add(1, Slice{Q(2), Q(3), Q(1), 1});
  auto slices = schedule.slices_of(1);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].start, Q(0));
  EXPECT_EQ(slices[1].start, Q(2));
  EXPECT_EQ(slices[2].start, Q(4));
}

TEST(Schedule, ClippedIntersectsExactly) {
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(4), Q(2), 0});
  Schedule clipped = schedule.clipped(Q(1), Q(3));
  auto slices = clipped.machine(0);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].start, Q(1));
  EXPECT_EQ(slices[0].end, Q(3));
  EXPECT_EQ(clipped.work_on(0), Q(4));
  // Empty intersection drops the slice.
  EXPECT_EQ(schedule.clipped(Q(5), Q(9)).slice_count(), 0u);
}

TEST(Schedule, MergeAppendsSlices) {
  Schedule a(2);
  a.add(0, Slice{Q(0), Q(1), Q(1), 0});
  Schedule b(2);
  b.add(1, Slice{Q(1), Q(2), Q(2), 1});
  a.merge(b);
  EXPECT_EQ(a.slice_count(), 2u);
  EXPECT_EQ(a.work_on(1), Q(2));
  Schedule wrong(3);
  EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(Schedule, EnergyUnderAlphaPower) {
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(3), 0});  // 3^2 * 2 = 18
  schedule.add(1, Slice{Q(0), Q(1), Q(2), 1});  // 2^2 * 1 = 4
  AlphaPower p(2.0);
  EXPECT_NEAR(schedule.energy(p), 22.0, 1e-12);
}

TEST(Schedule, EnergyWithIdleAddsStaticPower) {
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  // P(s) = s^3 + 1: busy contributes 2, idle contributes 1 * (2*4 - 1).
  CubicPlusLeakagePower p(1.0, 0.0, 1.0);
  EXPECT_NEAR(schedule.energy_with_idle(p, Q(0), Q(4)), 2.0 + 7.0, 1e-12);
}

TEST(Schedule, SpeedsAtSamplesAllMachines) {
  Schedule schedule(3);
  schedule.add(0, Slice{Q(0), Q(2), Q(5), 0});
  schedule.add(2, Slice{Q(1), Q(3), Q(1, 2), 1});
  auto speeds = schedule.speeds_at(Q(3, 2));
  ASSERT_EQ(speeds.size(), 3u);
  EXPECT_EQ(speeds[0], Q(5));
  EXPECT_EQ(speeds[1], Q(0));
  EXPECT_EQ(speeds[2], Q(1, 2));
  EXPECT_EQ(schedule.max_speed(), Q(5));
}

TEST(Feasibility, AcceptsACorrectSchedule) {
  Instance instance = one_job_instance();
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(1, Slice{Q(2), Q(4), Q(1), 0});
  auto report = check_schedule(instance, schedule);
  EXPECT_TRUE(report.feasible) << report.violations.front();
}

TEST(Feasibility, RejectsIncompleteWork) {
  Instance instance = one_job_instance();
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});  // only 2 of 4 units
  auto report = check_schedule(instance, schedule);
  EXPECT_FALSE(report.feasible);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("received work"), std::string::npos);
}

TEST(Feasibility, RejectsWindowViolation) {
  Instance instance = one_job_instance();
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(5), Q(4, 5), 0});  // runs past deadline 4
  auto report = check_schedule(instance, schedule);
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, RejectsMachineOverlap) {
  Instance instance({Job{Q(0), Q(4), Q(2)}, Job{Q(0), Q(4), Q(2)}}, 1);
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(0, Slice{Q(1), Q(3), Q(1), 1});  // overlaps on machine 0
  auto report = check_schedule(instance, schedule);
  EXPECT_FALSE(report.feasible);
}

TEST(Feasibility, RejectsSelfParallelism) {
  // Same job on two machines at the same time -- the constraint migration must
  // respect (Section 1 of the paper).
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 2);
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(1, Slice{Q(1), Q(3), Q(1), 0});
  auto report = check_schedule(instance, schedule);
  EXPECT_FALSE(report.feasible);
  bool mentions_parallel = false;
  for (const auto& violation : report.violations) {
    mentions_parallel |= violation.find("simultaneously") != std::string::npos;
  }
  EXPECT_TRUE(mentions_parallel);
}

TEST(Feasibility, MigrationWithoutOverlapIsFine) {
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 2);
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(2), Q(1), 0});
  schedule.add(1, Slice{Q(2), Q(4), Q(1), 0});  // moves machines at t=2
  EXPECT_TRUE(check_schedule(instance, schedule).feasible);
}

TEST(Feasibility, RejectsUnknownJobAndTooManyMachines) {
  Instance instance = one_job_instance();
  Schedule schedule(2);
  schedule.add(0, Slice{Q(0), Q(4), Q(1), 3});  // no job 3
  EXPECT_FALSE(check_schedule(instance, schedule).feasible);

  Schedule wide(5);
  EXPECT_FALSE(check_schedule(instance, wide).feasible);
}

TEST(Feasibility, ZeroWorkJobNeedsNoSlices) {
  Instance instance({Job{Q(0), Q(4), Q(0)}}, 1);
  Schedule schedule(1);
  EXPECT_TRUE(check_schedule(instance, schedule).feasible);
}

TEST(Feasibility, ViolationListIsBounded) {
  Instance instance({Job{Q(0), Q(1), Q(100)}}, 1);
  Schedule schedule(1);
  for (int i = 0; i < 40; ++i) {
    // 40 window violations for the same job.
    schedule.add(0, Slice{Q(i + 1), Q(i + 2), Q(1), 0});
  }
  auto report = check_schedule(instance, schedule);
  EXPECT_FALSE(report.feasible);
  EXPECT_LE(report.violations.size(), FeasibilityReport::kMaxViolations);
}

}  // namespace
}  // namespace mpss
