// Tests for the discretized-speed LP baseline (S16), the stand-in for the
// Bingham-Greenstreet LP approach [6].

#include "mpss/lp/lp_baseline.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(LpBaseline, SingleJobSingleMachineExact) {
  // One job, window [0,2), work 4: OPT runs at speed 2; energy 2^alpha * 2.
  Instance instance({Job{Q(0), Q(2), Q(4)}}, 1);
  AlphaPower p(2.0);
  // Grid that contains the exact optimal speed (top 4, 8 levels -> 0.5 steps).
  auto result = lp_baseline(instance, p, 8, 4.0);
  ASSERT_EQ(result.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(result.energy, 8.0, 1e-6);
}

TEST(LpBaseline, ConvergesFromAboveToOptimal) {
  Instance instance = generate_uniform({.jobs = 5, .machines = 2, .horizon = 10,
                                        .max_window = 6, .max_work = 4}, 17);
  AlphaPower p(2.0);
  double opt = optimal_energy(instance, p);
  double previous = std::numeric_limits<double>::infinity();
  for (std::size_t grid : {4u, 8u, 16u, 32u}) {
    auto result = lp_baseline(instance, p, grid);
    ASSERT_EQ(result.status, LpSolution::Status::kOptimal) << "grid " << grid;
    // Upper bound on OPT (restricted speeds + convexity), and improving.
    EXPECT_GE(result.energy, opt - 1e-6) << "grid " << grid;
    EXPECT_LE(result.energy, previous + 1e-6);
    previous = result.energy;
  }
  // Fine grid should be close.
  EXPECT_LE(previous, opt * 1.05);
}

TEST(LpBaseline, MultiMachineUsesParallelism) {
  // 2 identical jobs, one machine vs two machines: LP energy should halve the
  // speed (quarter the power each, double the runtime...) -- with m=2 each job can
  // run at speed 1 instead of sharing one machine at speed 2.
  std::vector<Job> jobs{Job{Q(0), Q(1), Q(1)}, Job{Q(0), Q(1), Q(1)}};
  AlphaPower p(2.0);
  auto one = lp_baseline(Instance(jobs, 1), p, 16, 4.0);
  auto two = lp_baseline(Instance(jobs, 2), p, 16, 4.0);
  ASSERT_EQ(one.status, LpSolution::Status::kOptimal);
  ASSERT_EQ(two.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(one.energy, 4.0, 1e-6);  // speed 2 for 1 time unit
  EXPECT_NEAR(two.energy, 2.0, 1e-6);  // speed 1 on each machine
}

TEST(LpBaseline, ZeroWorkInstance) {
  Instance instance({Job{Q(0), Q(1), Q(0)}}, 1);
  auto result = lp_baseline(instance, AlphaPower(2.0), 4);
  EXPECT_EQ(result.status, LpSolution::Status::kOptimal);
  EXPECT_DOUBLE_EQ(result.energy, 0.0);
}

TEST(LpBaseline, ReportsProblemSize) {
  Instance instance = generate_uniform({.jobs = 4, .machines = 2, .horizon = 8,
                                        .max_window = 5, .max_work = 3}, 3);
  auto result = lp_baseline(instance, AlphaPower(2.0), 6);
  EXPECT_GT(result.variables, 0u);
  EXPECT_GT(result.constraints, 0u);
  EXPECT_GT(result.iterations, 0u);
}

TEST(LpBaseline, RejectsTinyGrid) {
  Instance instance({Job{Q(0), Q(2), Q(4)}}, 1);
  EXPECT_THROW((void)lp_baseline(instance, AlphaPower(2.0), 1), std::invalid_argument);
}

TEST(LpBaseline, HintBelowRequiredSpeedIsInfeasible) {
  // Work 4 in window [0,2) needs speed >= 2; a grid capped at 1 cannot finish.
  Instance instance({Job{Q(0), Q(2), Q(4)}}, 1);
  auto result = lp_baseline(instance, AlphaPower(2.0), 8, 1.0);
  EXPECT_EQ(result.status, LpSolution::Status::kInfeasible);
}

TEST(LpBaseline, GeneralConvexPowerFunction) {
  // The LP (like the combinatorial algorithm) accepts any convex non-decreasing P.
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(1), Q(3), Q(2)}}, 1);
  PiecewiseLinearPower p({{0.0, 0.0}, {1.0, 1.0}, {2.0, 4.0}, {4.0, 16.0}});
  auto lp = lp_baseline(instance, p, 16);
  ASSERT_EQ(lp.status, LpSolution::Status::kOptimal);
  double opt = optimal_schedule(instance).schedule.energy(p);
  EXPECT_GE(lp.energy, opt - 1e-6);
  EXPECT_LE(lp.energy, opt * 1.10);
}

}  // namespace
}  // namespace mpss
