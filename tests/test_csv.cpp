// Tests for CSV reading/writing (trace substrate).

#include "mpss/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mpss/util/random.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {
namespace {

std::string write_rows(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  CsvWriter writer(os);
  for (const auto& row : rows) writer.write_row(row);
  return os.str();
}

TEST(Csv, WritesPlainFields) {
  EXPECT_EQ(write_rows({{"a", "b", "c"}}), "a,b,c\n");
  EXPECT_EQ(write_rows({{"1"}, {"2"}}), "1\n2\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  EXPECT_EQ(write_rows({{"a,b", "c"}}), "\"a,b\",c\n");
  EXPECT_EQ(write_rows({{"say \"hi\""}}), "\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(write_rows({{"line\nbreak"}}), "\"line\nbreak\"\n");
}

TEST(Csv, RowTemplateFormatsMixedTypes) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.row(std::string("job"), 42, 2.5, Q(1, 3));
  EXPECT_EQ(os.str(), "job,42,2.5,1/3\n");
}

TEST(Csv, ParseSimple) {
  auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, ParseHandlesQuotedFields) {
  auto rows = parse_csv("\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "multi\nline");
}

TEST(Csv, ParseHandlesCrlfAndMissingTrailingNewline) {
  auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseEmptyFields) {
  auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW((void)parse_csv("\"oops"), std::invalid_argument);
}

TEST(Csv, RoundTripArbitraryContent) {
  std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with\"quote"},
      {"", "multi\nline", "end"},
  };
  auto parsed = parse_csv(write_rows(rows));
  EXPECT_EQ(parsed, rows);
}

TEST(Csv, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(parse_csv("").empty());
  EXPECT_TRUE(parse_csv("\n\n").empty());  // blank lines are skipped
}

TEST(Csv, FuzzRandomBytesNeverCrash) {
  // parse_csv on arbitrary bytes must either return rows or throw
  // std::invalid_argument -- never crash or loop.
  Xoshiro256 rng(0xFFF);
  const char alphabet[] = "a1,\"\n\r\\;\t ";
  for (int round = 0; round < 500; ++round) {
    std::string input;
    std::size_t length = rng.below(60);
    for (std::size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
    try {
      auto rows = parse_csv(input);
      for (const auto& row : rows) EXPECT_FALSE(row.empty());
    } catch (const std::invalid_argument&) {
      // Unterminated quote: acceptable.
    }
  }
}

TEST(Csv, FuzzWriterReaderRoundTrip) {
  // Any fields survive a write/parse cycle byte-for-byte.
  Xoshiro256 rng(0xABC);
  const char alphabet[] = "ab,\"\n x";
  for (int round = 0; round < 200; ++round) {
    std::vector<std::vector<std::string>> rows(1 + rng.below(3));
    for (auto& row : rows) {
      row.resize(1 + rng.below(4));
      for (auto& field : row) {
        std::size_t length = rng.below(8);
        for (std::size_t i = 0; i < length; ++i) {
          field.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
        }
      }
      // A row whose only field is empty serializes to a blank line, which the
      // parser (by design) skips; keep the first field non-empty.
      if (row.size() == 1 && row[0].empty()) row[0] = "x";
    }
    std::ostringstream os;
    CsvWriter writer(os);
    for (const auto& row : rows) writer.write_row(row);
    EXPECT_EQ(parse_csv(os.str()), rows) << "round " << round;
  }
}

}  // namespace
}  // namespace mpss
