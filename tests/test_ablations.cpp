// Ablation tests (experiment E12): switching off the paper's load-bearing design
// choices must visibly break exactly the property each choice protects --
// optimality for the Lemma 4 removal rule, feasibility for AVR's peel-off.

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/util/error.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Ablation, RandomRemovalStaysFeasibleButLosesOptimality) {
  AlphaPower p(2.0);
  OptimalOptions ablated;
  ablated.removal_policy = OptimalOptions::RemovalPolicy::kRandomCandidate;

  std::size_t worse = 0;
  std::size_t attempted = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Instance instance = generate_laminar({.jobs = 12, .machines = 2, .depth = 3,
                                          .max_work = 8}, seed);
    double exact = optimal_energy(instance, p);
    ablated.ablation_seed = seed;
    ++attempted;
    try {
      auto result = optimal_schedule(instance, ablated);
      // Whatever sets it produced, the flow certificates keep it feasible.
      auto report = check_schedule(instance, result.schedule);
      ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                   << report.violations.front();
      double energy = result.schedule.energy(p);
      EXPECT_GE(energy, exact - 1e-9) << seed;  // can never beat the optimum
      if (energy > exact * (1.0 + 1e-9)) ++worse;
    } catch (const InternalError&) {
      // Random removals may empty a candidate set -- also a failure mode the
      // paper's rule provably avoids.
      ++worse;
    }
  }
  // The ablated rule must actually misbehave on a meaningful share of instances,
  // otherwise the ablation demonstrates nothing.
  EXPECT_GE(worse, attempted / 4)
      << "random removal looked as good as Lemma 4's rule -- suspicious";
}

TEST(Ablation, PaperRuleIsDefaultAndDeterministic) {
  Instance instance = generate_laminar({.jobs = 10, .machines = 2, .depth = 3,
                                        .max_work = 6}, 3);
  auto a = optimal_schedule(instance);
  auto b = optimal_schedule(instance, OptimalOptions{});
  AlphaPower p(2.5);
  EXPECT_DOUBLE_EQ(a.schedule.energy(p), b.schedule.energy(p));
  EXPECT_EQ(a.phases.size(), b.phases.size());
}

TEST(Ablation, AvrWithoutPeelingViolatesSelfParallelism) {
  // One dominant job (density 10) among light ones: Fig. 3's peel gives it a
  // dedicated processor; without peeling its chunk spans > 1 unit of the wrap
  // tape and lands on two processors at the same time.
  Instance instance({Job{Q(0), Q(1), Q(10)}, Job{Q(0), Q(1), Q(1)},
                     Job{Q(0), Q(1), Q(1)}}, 2);
  auto good = avr_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, good.schedule).feasible);

  auto bad = avr_schedule(instance, AvrOptions{.enable_peeling = false});
  auto report = check_schedule(instance, bad.schedule);
  EXPECT_FALSE(report.feasible);
  bool self_parallel = false;
  for (const auto& violation : report.violations) {
    self_parallel |= violation.find("simultaneously") != std::string::npos;
  }
  EXPECT_TRUE(self_parallel) << "expected a self-parallelism violation";
}

TEST(Ablation, AvrWithoutPeelingFineWhenDensitiesBalanced) {
  // When no job exceeds the average load, the peel never fires and the ablated
  // variant coincides with the real one.
  std::vector<Job> jobs(4, Job{Q(0), Q(2), Q(2)});
  Instance instance(jobs, 2);
  auto ablated = avr_schedule(instance, AvrOptions{.enable_peeling = false});
  auto report = check_schedule(instance, ablated.schedule);
  EXPECT_TRUE(report.feasible);
  AlphaPower p(2.0);
  EXPECT_NEAR(ablated.schedule.energy(p), avr_energy(instance, p), 1e-12);
}

TEST(Ablation, AvrPeelingCountsMatchDominantJobs) {
  // Sanity on the non-ablated path: number of peels in one interval equals the
  // number of jobs denser than the running average (computed independently).
  Instance instance({Job{Q(0), Q(1), Q(9)}, Job{Q(0), Q(1), Q(5)},
                     Job{Q(0), Q(1), Q(1)}, Job{Q(0), Q(1), Q(1)}}, 3);
  auto result = avr_schedule(instance);
  EXPECT_EQ(result.peel_events, 2u);  // 9 > 16/3, then 5 > 7/2; 1 <= 2/1
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

}  // namespace
}  // namespace mpss
