// Tests for the single-processor YDS algorithm (S9) and the exact EDF simulator.

#include "mpss/core/yds.hpp"

#include <gtest/gtest.h>

#include "mpss/util/error.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Edf, SingleJobRunsInWindow) {
  std::vector<Job> jobs{Job{Q(2), Q(5), Q(3)}};
  auto slices = edf_at_constant_speed(jobs, Q(1));
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].start, Q(2));
  EXPECT_EQ(slices[0].end, Q(5));
  EXPECT_EQ(slices[0].job, 0u);
}

TEST(Edf, PreemptsForEarlierDeadline) {
  // Job 0 long window; job 1 arrives later with a tighter deadline.
  std::vector<Job> jobs{Job{Q(0), Q(10), Q(4)}, Job{Q(1), Q(3), Q(2)}};
  auto slices = edf_at_constant_speed(jobs, Q(1));
  // Expect: job0 [0,1), job1 [1,3), job0 [3,6).
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].job, 0u);
  EXPECT_EQ(slices[1].job, 1u);
  EXPECT_EQ(slices[1].start, Q(1));
  EXPECT_EQ(slices[1].end, Q(3));
  EXPECT_EQ(slices[2].job, 0u);
  EXPECT_EQ(slices[2].end, Q(6));
}

TEST(Edf, IdleGapBetweenBatches) {
  std::vector<Job> jobs{Job{Q(0), Q(1), Q(1)}, Job{Q(5), Q(6), Q(1)}};
  auto slices = edf_at_constant_speed(jobs, Q(1));
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].end, Q(1));
  EXPECT_EQ(slices[1].start, Q(5));
}

TEST(Edf, ThrowsOnInfeasibleSpeed) {
  std::vector<Job> jobs{Job{Q(0), Q(1), Q(5)}};
  EXPECT_THROW((void)edf_at_constant_speed(jobs, Q(1)), InternalError);
  EXPECT_THROW((void)edf_at_constant_speed(jobs, Q(0)), std::invalid_argument);
}

TEST(Yds, SingleJobRunsAtDensity) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 1);
  auto result = yds_schedule(instance);
  EXPECT_EQ(result.job_speed[0], Q(2));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(Yds, RejectsMultiMachineInstance) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 2);
  EXPECT_THROW((void)yds_schedule(instance), std::invalid_argument);
}

TEST(Yds, TwoLevelSpeedStructure) {
  // A dense inner job inside a sparse outer job: classic two-iteration YDS.
  // Inner: [2,3) work 3 -> intensity 3. Outer: [0,6) work 3.
  // After contracting [2,3], outer has 5 time units -> speed 3/5.
  Instance instance({Job{Q(0), Q(6), Q(3)}, Job{Q(2), Q(3), Q(3)}}, 1);
  auto result = yds_schedule(instance);
  EXPECT_EQ(result.job_speed[1], Q(3));
  EXPECT_EQ(result.job_speed[0], Q(3, 5));
  EXPECT_EQ(result.iterations, 2u);
  auto report = check_schedule(instance, result.schedule);
  EXPECT_TRUE(report.feasible) << report.violations.front();
}

TEST(Yds, EqualDensityJobsShareOneLevel) {
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(2), Q(4), Q(2)}}, 1);
  auto result = yds_schedule(instance);
  EXPECT_EQ(result.job_speed[0], Q(1));
  EXPECT_EQ(result.job_speed[1], Q(1));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Yds, CriticalIntervalSpansMultipleJobs) {
  // Jobs [0,2) w=3 and [1,3) w=3: the critical interval is [0,3) with intensity 2.
  Instance instance({Job{Q(0), Q(2), Q(3)}, Job{Q(1), Q(3), Q(3)}}, 1);
  auto result = yds_schedule(instance);
  EXPECT_EQ(result.job_speed[0], Q(2));
  EXPECT_EQ(result.job_speed[1], Q(2));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Yds, ZeroWorkJobsIgnored) {
  Instance instance({Job{Q(0), Q(4), Q(0)}, Job{Q(0), Q(4), Q(4)}}, 1);
  auto result = yds_schedule(instance);
  EXPECT_EQ(result.job_speed[0], Q(0));
  EXPECT_EQ(result.job_speed[1], Q(1));
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Yds, EmptyInstance) {
  Instance instance({}, 1);
  auto result = yds_schedule(instance);
  EXPECT_EQ(result.schedule.slice_count(), 0u);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Yds, SpeedLevelsAreNonIncreasingAcrossIterations) {
  // Property on random instances: job speeds sorted by YDS iteration order are
  // non-increasing (each later critical interval has lower intensity), and the
  // schedule is always exactly feasible.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Instance instance = generate_uniform({.jobs = 10, .machines = 1, .horizon = 20,
                                          .max_window = 10, .max_work = 8}, seed);
    auto result = yds_schedule(instance);
    auto report = check_schedule(instance, result.schedule);
    ASSERT_TRUE(report.feasible)
        << "seed " << seed << ": " << report.violations.front();
    // Each job runs at exactly one constant speed: every slice of job k has
    // speed job_speed[k].
    for (std::size_t k = 0; k < instance.size(); ++k) {
      for (const Slice& slice : result.schedule.slices_of(k)) {
        EXPECT_EQ(slice.speed, result.job_speed[k]);
      }
    }
  }
}

TEST(Yds, HandlesFractionalTimes) {
  Instance instance({Job{Q(0), Q(1, 2), Q(1)}, Job{Q(1, 3), Q(1), Q(1)}}, 1);
  auto result = yds_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

}  // namespace
}  // namespace mpss
