// Exact covariance laws of the optimization under instance transformations
// (S37): optimal schedules shift, time-scale and work-scale exactly as the
// theory dictates.

#include "mpss/workload/transform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

Instance test_instance(std::uint64_t seed) {
  return generate_uniform({.jobs = 8, .machines = 2, .horizon = 12, .max_window = 6,
                           .max_work = 5}, seed);
}

TEST(Transform, ShiftPreservesSpeedsAndEnergy) {
  AlphaPower p(2.5);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Instance base = test_instance(seed);
    Instance shifted = shift_time(base, Q(7, 3));
    auto a = optimal_schedule(base);
    auto b = optimal_schedule(shifted);
    for (std::size_t k = 0; k < base.size(); ++k) {
      EXPECT_EQ(a.speed_of_job(k), b.speed_of_job(k)) << seed;
    }
    EXPECT_NEAR(a.schedule.energy(p), b.schedule.energy(p),
                1e-12 * (1 + a.schedule.energy(p)));
    // Shifting the schedule itself stays feasible for the shifted instance.
    Schedule moved = shift_time(a.schedule, Q(7, 3));
    EXPECT_TRUE(check_schedule(shifted, moved).feasible) << seed;
  }
}

TEST(Transform, NegativeShiftWorksToo) {
  Instance base = shift_time(test_instance(3), Q(100));
  Instance back = shift_time(base, Q(-100));
  auto a = optimal_schedule(base);
  auto b = optimal_schedule(back);
  EXPECT_EQ(a.speed_of_job(0), b.speed_of_job(0));
}

TEST(Transform, TimeScaleCovariance) {
  // t -> c*t: optimal speeds scale by exactly 1/c; energy by c^(1-alpha).
  const Q c(3, 2);
  const double alpha = 2.0;
  AlphaPower p(alpha);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Instance base = test_instance(seed);
    Instance stretched = scale_time(base, c);
    auto a = optimal_schedule(base);
    auto b = optimal_schedule(stretched);
    for (std::size_t k = 0; k < base.size(); ++k) {
      EXPECT_EQ(a.speed_of_job(k) / c, b.speed_of_job(k)) << seed << " job " << k;
    }
    double expected = std::pow(c.to_double(), 1.0 - alpha) * a.schedule.energy(p);
    EXPECT_NEAR(b.schedule.energy(p), expected, 1e-9 * (1 + expected)) << seed;
    // The transformed schedule is feasible and optimal for the stretched instance.
    Schedule moved = scale_time(a.schedule, c);
    EXPECT_TRUE(check_schedule(stretched, moved).feasible) << seed;
    EXPECT_NEAR(moved.energy(p), expected, 1e-9 * (1 + expected)) << seed;
  }
}

TEST(Transform, WorkScaleCovariance) {
  // w -> c*w: optimal speeds scale by exactly c; energy by c^alpha.
  const Q c(5, 2);
  const double alpha = 3.0;
  AlphaPower p(alpha);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Instance base = test_instance(seed);
    Instance heavier = scale_work(base, c);
    auto a = optimal_schedule(base);
    auto b = optimal_schedule(heavier);
    for (std::size_t k = 0; k < base.size(); ++k) {
      EXPECT_EQ(a.speed_of_job(k) * c, b.speed_of_job(k)) << seed << " job " << k;
    }
    double expected = std::pow(c.to_double(), alpha) * a.schedule.energy(p);
    EXPECT_NEAR(b.schedule.energy(p), expected, 1e-9 * (1 + expected)) << seed;
    Schedule moved = scale_work(a.schedule, c);
    EXPECT_TRUE(check_schedule(heavier, moved).feasible) << seed;
  }
}

TEST(Transform, WorkScaleZeroEmptiesTheLoad) {
  Instance zero = scale_work(test_instance(1), Q(0));
  EXPECT_EQ(zero.total_work(), Q(0));
  EXPECT_EQ(optimal_schedule(zero).schedule.slice_count(), 0u);
}

TEST(Transform, Validation) {
  Instance base = test_instance(1);
  EXPECT_THROW((void)scale_time(base, Q(0)), std::invalid_argument);
  EXPECT_THROW((void)scale_time(base, Q(-1)), std::invalid_argument);
  EXPECT_THROW((void)scale_work(base, Q(-1)), std::invalid_argument);
  Schedule schedule(1);
  schedule.add(0, Slice{Q(0), Q(1), Q(1), 0});
  EXPECT_THROW((void)scale_work(schedule, Q(0)), std::invalid_argument);
}

TEST(Transform, CompositionRoundTrip) {
  Instance base = test_instance(2);
  Instance there = scale_time(shift_time(base, Q(5)), Q(2));
  Instance back = shift_time(scale_time(there, Q(1, 2)), Q(-5));
  ASSERT_EQ(back.size(), base.size());
  for (std::size_t k = 0; k < base.size(); ++k) {
    EXPECT_EQ(back.job(k), base.job(k));
  }
}

}  // namespace
}  // namespace mpss
