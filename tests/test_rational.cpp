// Unit and property tests for exact rationals (S2) -- the scalar type of the
// entire scheduling core.

#include "mpss/util/rational.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "mpss/util/numeric_counters.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(Rational, DefaultIsZero) {
  Q zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_integer());
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Rational, NormalizesOnConstruction) {
  Q half(2, 4);
  EXPECT_EQ(half.num(), BigInt(1));
  EXPECT_EQ(half.den(), BigInt(2));
  Q negative(3, -6);
  EXPECT_EQ(negative.num(), BigInt(-1));
  EXPECT_EQ(negative.den(), BigInt(2));
  Q zero(0, 17);
  EXPECT_EQ(zero.den(), BigInt(1));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW((void)Q(1, 0), std::domain_error);
}

TEST(Rational, ArithmeticStaysExact) {
  Q third(1, 3);
  EXPECT_EQ(third + third + third, Q(1));
  EXPECT_EQ(Q(1, 6) + Q(1, 10), Q(4, 15));
  EXPECT_EQ(Q(1, 2) - Q(1, 3), Q(1, 6));
  EXPECT_EQ(Q(2, 3) * Q(3, 4), Q(1, 2));
  EXPECT_EQ(Q(2, 3) / Q(4, 9), Q(3, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Q(1) / Q(0)), std::domain_error);
  EXPECT_THROW((void)Q(0).inverse(), std::domain_error);
}

TEST(Rational, ComparisonCrossMultiplies) {
  EXPECT_LT(Q(1, 3), Q(1, 2));
  EXPECT_LT(Q(-1, 2), Q(-1, 3));
  EXPECT_LT(Q(-1), Q(1, 1000000));
  EXPECT_EQ(Q(2, 4), Q(1, 2));
  EXPECT_GT(Q(7, 3), Q(2));
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(min(Q(1, 3), Q(1, 2)), Q(1, 3));
  EXPECT_EQ(max(Q(1, 3), Q(1, 2)), Q(1, 2));
  EXPECT_EQ(min(Q(5), Q(5)), Q(5));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Q(7, 2).floor(), BigInt(3));
  EXPECT_EQ(Q(7, 2).ceil(), BigInt(4));
  EXPECT_EQ(Q(-7, 2).floor(), BigInt(-4));
  EXPECT_EQ(Q(-7, 2).ceil(), BigInt(-3));
  EXPECT_EQ(Q(4).floor(), BigInt(4));
  EXPECT_EQ(Q(4).ceil(), BigInt(4));
}

TEST(Rational, FromStringParsesBothForms) {
  EXPECT_EQ(Q::from_string("5"), Q(5));
  EXPECT_EQ(Q::from_string("-5"), Q(-5));
  EXPECT_EQ(Q::from_string("10/4"), Q(5, 2));
  EXPECT_EQ(Q::from_string("-10/4"), Q(-5, 2));
  EXPECT_THROW((void)Q::from_string("1/0"), std::domain_error);
  EXPECT_THROW((void)Q::from_string("a/b"), std::invalid_argument);
}

TEST(Rational, ToStringRoundTrip) {
  for (const char* text : {"0", "5", "-5", "1/3", "-22/7", "123456789/987654321"}) {
    EXPECT_EQ(Q::from_string(text).to_string(),
              Q::from_string(text).to_string());  // stable
    EXPECT_EQ(Q::from_string(Q::from_string(text).to_string()), Q::from_string(text));
  }
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Q(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Q(-3, 4).to_double(), -0.75);
  EXPECT_NEAR(Q(1, 3).to_double(), 0.333333333333, 1e-12);
}

TEST(Rational, AbsNegateInverse) {
  EXPECT_EQ(Q(-5, 3).abs(), Q(5, 3));
  EXPECT_EQ(-Q(5, 3), Q(-5, 3));
  EXPECT_EQ(Q(5, 3).inverse(), Q(3, 5));
  EXPECT_EQ(Q(-5, 3).inverse(), Q(-3, 5));
}

TEST(Rational, SignReporting) {
  EXPECT_EQ(Q(3, 7).sign(), 1);
  EXPECT_EQ(Q(-3, 7).sign(), -1);
  EXPECT_EQ(Q(0).sign(), 0);
}

TEST(Rational, FieldAxiomsRandomized) {
  Xoshiro256 rng(1234);
  auto random_q = [&rng] {
    return Q(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
  };
  for (int round = 0; round < 300; ++round) {
    Q a = random_q();
    Q b = random_q();
    Q c = random_q();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ(a - b + b, a);
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
    // Order compatibility: a < b implies a + c < b + c.
    if (a < b) {
      EXPECT_LT(a + c, b + c);
    }
  }
}

TEST(Rational, DenominatorGrowthStaysCanonical) {
  // Sum of 1/k for k = 1..30 has a known canonical denominator; verify gcd
  // normalization keeps the representation canonical along the way.
  Q sum;
  for (int k = 1; k <= 30; ++k) sum += Q(1, k);
  EXPECT_EQ(BigInt::gcd(sum.num(), sum.den()), BigInt(1));
  EXPECT_EQ(sum, Q(BigInt::from_string("9304682830147"),
                   BigInt::from_string("2329089562800")));
}

TEST(Rational, SmallNormalizationStaysAllocationFreeAndCanonical) {
  NumericCounters& counters = numeric_counters();
  std::uint64_t before = counters.rational_norm_small;
  Q value(6, -10);
  EXPECT_GT(counters.rational_norm_small, before);
  EXPECT_EQ(value.num(), BigInt(-3));
  EXPECT_EQ(value.den(), BigInt(5));
  EXPECT_TRUE(value.num().is_small());
  EXPECT_TRUE(value.den().is_small());
}

TEST(Rational, Int64MinOperandsFallBackToTheGeneralPath) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  Q a(kMin, 2);
  EXPECT_EQ(a.num(), BigInt(kMin / 2));
  EXPECT_EQ(a.den(), BigInt(1));
  Q b(1, kMin);  // negative denominator of magnitude 2^63
  EXPECT_EQ(b.num(), BigInt(-1));
  EXPECT_EQ(b.den().to_string(), "9223372036854775808");
  Q c(kMin, kMin);
  EXPECT_EQ(c, Q(1));
}

TEST(Rational, SmallVsForcedLimbArithmeticDifferential) {
  // Rational arithmetic over forced-big components must agree bit-for-bit with
  // the small path: same canonical numerator/denominator, same hash.
  Xoshiro256 rng(77);
  auto forced = [](const Q& q) {
    BigInt num = q.num();
    BigInt den = q.den();
    num.force_big();
    den.force_big();
    return Q(std::move(num), std::move(den));
  };
  for (int round = 0; round < 500; ++round) {
    Q a(rng.uniform_int(-1'000'000, 1'000'000), rng.uniform_int(1, 1'000'000));
    Q b(rng.uniform_int(-1'000'000, 1'000'000), rng.uniform_int(1, 1'000'000));
    Q fa = forced(a);
    Q fb = forced(b);
    EXPECT_EQ(a + b, fa + fb);
    EXPECT_EQ(a - b, fa - fb);
    EXPECT_EQ(a * b, fa * fb);
    if (!b.is_zero()) EXPECT_EQ(a / b, fa / fb);
    EXPECT_EQ(a <=> b, fa <=> fb);
    EXPECT_EQ((a + b).hash(), (fa + fb).hash());
  }
}

TEST(Rational, HashConsistentWithEquality) {
  EXPECT_EQ(Q(2, 4).hash(), Q(1, 2).hash());
  EXPECT_NE(Q(1, 2).hash(), Q(1, 3).hash());
}

}  // namespace
}  // namespace mpss
