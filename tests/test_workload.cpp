// Tests for the workload generators (S17) and CSV traces.

#include "mpss/workload/generators.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/traces.hpp"

namespace mpss {
namespace {

TEST(Workload, UniformShapeAndDeterminism) {
  UniformWorkload config{.jobs = 25, .machines = 4, .horizon = 40, .max_window = 10,
                         .max_work = 7};
  Instance a = generate_uniform(config, 42);
  Instance b = generate_uniform(config, 42);
  Instance c = generate_uniform(config, 43);
  EXPECT_EQ(a.size(), 25u);
  EXPECT_EQ(a.machines(), 4u);
  EXPECT_EQ(instance_to_csv(a), instance_to_csv(b));  // same seed, same instance
  EXPECT_NE(instance_to_csv(a), instance_to_csv(c));
  EXPECT_TRUE(a.has_integral_times());
  for (const Job& job : a.jobs()) {
    EXPECT_GE(job.release, Q(0));
    EXPECT_LE(job.deadline, Q(40));
    EXPECT_LE(job.window(), Q(10));
    EXPECT_GE(job.work, Q(1));
    EXPECT_LE(job.work, Q(7));
  }
}

TEST(Workload, BurstyReleasesCluster) {
  BurstyWorkload config{.bursts = 4, .jobs_per_burst = 5, .machines = 2,
                        .horizon = 40, .burst_window = 6, .max_work = 5};
  Instance instance = generate_bursty(config, 7);
  EXPECT_EQ(instance.size(), 20u);
  // At most `bursts` distinct release times.
  std::set<std::string> releases;
  for (const Job& job : instance.jobs()) releases.insert(job.release.to_string());
  EXPECT_LE(releases.size(), 4u);
}

TEST(Workload, LaminarWindowsNest) {
  Instance instance = generate_laminar({.jobs = 30, .machines = 2, .depth = 3,
                                        .max_work = 5}, 11);
  // Any two windows either nest or are disjoint.
  for (const Job& a : instance.jobs()) {
    for (const Job& b : instance.jobs()) {
      bool disjoint = a.deadline <= b.release || b.deadline <= a.release;
      bool a_in_b = b.release <= a.release && a.deadline <= b.deadline;
      bool b_in_a = a.release <= b.release && b.deadline <= a.deadline;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "[" << a.release << "," << a.deadline << ") vs [" << b.release << ","
          << b.deadline << ")";
    }
  }
}

TEST(Workload, AgreeableOrderPreserved) {
  Instance instance = generate_agreeable({.jobs = 20, .machines = 3, .horizon = 30,
                                          .min_window = 2, .max_window = 8,
                                          .max_work = 5}, 13);
  // Sorted by release, deadlines must be non-decreasing.
  std::vector<Job> jobs = instance.jobs();
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.release < b.release; });
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].deadline, jobs[i].deadline);
  }
}

TEST(Workload, PeriodicJobsTileThePeriods) {
  Instance instance = generate_periodic({.tasks = 3, .machines = 2,
                                         .hyperperiods = 2, .max_work = 4}, 17);
  EXPECT_GT(instance.size(), 6u);  // at least one job per task per hyperperiod
  for (const Job& job : instance.jobs()) {
    EXPECT_EQ(job.window(), job.deadline - job.release);
    EXPECT_LE(job.deadline, Q(24));
  }
}

TEST(Workload, HeavyTailHasGiantsAndDwarfs) {
  Instance instance = generate_heavy_tail({.jobs = 60, .machines = 4, .horizon = 80,
                                           .shape = 1.2, .max_work = 64}, 9);
  ASSERT_EQ(instance.size(), 60u);
  std::size_t small = 0, large = 0;
  for (const Job& job : instance.jobs()) {
    EXPECT_GE(job.work, Q(1));
    EXPECT_LE(job.work, Q(64));
    EXPECT_LT(job.release, job.deadline);
    EXPECT_LE(job.deadline, Q(80));
    if (job.work <= Q(2)) ++small;
    if (job.work >= Q(16)) ++large;
  }
  EXPECT_GT(small, 20u);  // heavy tail: mass at the bottom...
  EXPECT_GE(large, 1u);   // ...with at least one giant
  EXPECT_THROW((void)generate_heavy_tail({.jobs = 2, .machines = 1, .horizon = 2,
                                          .shape = 1.0, .max_work = 1}, 1),
               std::invalid_argument);
}

TEST(Workload, HeavyTailSchedulesEndToEnd) {
  Instance instance = generate_heavy_tail({.jobs = 15, .machines = 3, .horizon = 40,
                                           .shape = 1.5, .max_work = 32}, 4);
  auto result = optimal_schedule(instance);
  EXPECT_TRUE(check_schedule(instance, result.schedule).feasible);
}

TEST(Workload, SurpriseMixesRelaxedAndUrgent) {
  Instance instance = generate_surprise({.jobs = 20, .machines = 2, .horizon = 30,
                                         .max_work = 5, .urgent_window = 3}, 5);
  ASSERT_EQ(instance.size(), 20u);
  std::size_t relaxed = 0, urgent = 0;
  for (const Job& job : instance.jobs()) {
    if (job.deadline == Q(30)) ++relaxed;
    if (job.window() <= Q(3)) ++urgent;
  }
  EXPECT_GE(relaxed, 10u);  // the even half (urgent jobs could also hit horizon)
  EXPECT_GE(urgent, 5u);
  EXPECT_THROW((void)generate_surprise({.jobs = 2, .machines = 1, .horizon = 2,
                                        .max_work = 1, .urgent_window = 1}, 1),
               std::invalid_argument);
}

TEST(Workload, AvrAdversaryShape) {
  Instance instance = generate_avr_adversary(5, 1);
  ASSERT_EQ(instance.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(instance.job(i).release, Q(static_cast<std::int64_t>(i)));
    EXPECT_EQ(instance.job(i).deadline, Q(5));
    EXPECT_EQ(instance.job(i).work, Q(1));
  }
}

TEST(Workload, ParallelBatchShape) {
  Instance instance = generate_parallel_batch(3, 4, 2);
  EXPECT_EQ(instance.size(), 12u);
  EXPECT_EQ(instance.machines(), 4u);
  EXPECT_EQ(instance.total_work(), Q(24));
}

TEST(Workload, GeneratorsValidateConfig) {
  EXPECT_THROW((void)generate_uniform({.jobs = 1, .machines = 1, .horizon = 1,
                                       .max_window = 1, .max_work = 1}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)generate_laminar({.jobs = 1, .machines = 1, .depth = 0,
                                       .max_work = 1}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)generate_avr_adversary(0, 1), std::invalid_argument);
}

TEST(Traces, CsvRoundTripIsLossless) {
  Instance original({Job{Q(0), Q(4), Q(2)}, Job{Q(1, 3), Q(5, 2), Q(7, 11)}}, 3);
  Instance reloaded = instance_from_csv(instance_to_csv(original));
  EXPECT_EQ(reloaded.machines(), 3u);
  ASSERT_EQ(reloaded.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(reloaded.job(k), original.job(k));
  }
}

TEST(Traces, FileRoundTrip) {
  Instance original = generate_uniform({.jobs = 10, .machines = 2, .horizon = 15,
                                        .max_window = 6, .max_work = 4}, 21);
  std::string path = testing::TempDir() + "/mpss_trace_test.csv";
  save_instance(original, path);
  Instance reloaded = load_instance(path);
  EXPECT_EQ(instance_to_csv(reloaded), instance_to_csv(original));
}

TEST(Traces, ScheduleCsvRoundTripIsLossless) {
  Schedule original(2);
  original.add(0, Slice{Q(0), Q(2), Q(3, 2), 0});
  original.add(1, Slice{Q(1, 3), Q(5, 6), Q(7), 1});
  Schedule reloaded = schedule_from_csv(schedule_to_csv(original));
  EXPECT_EQ(reloaded.machines(), 2u);
  EXPECT_EQ(schedule_to_csv(reloaded), schedule_to_csv(original));
  EXPECT_EQ(reloaded.machine(1)[0], original.machine(1)[0]);
}

TEST(Traces, ScheduleFileRoundTrip) {
  Schedule original(1);
  original.add(0, Slice{Q(0), Q(1), Q(2), 5});
  std::string path = testing::TempDir() + "/mpss_schedule_test.csv";
  save_schedule(original, path);
  Schedule reloaded = load_schedule(path);
  EXPECT_EQ(schedule_to_csv(reloaded), schedule_to_csv(original));
}

TEST(Traces, RejectsMalformedScheduleCsv) {
  EXPECT_THROW((void)schedule_from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)schedule_from_csv("machines,1\n"), std::invalid_argument);
  EXPECT_THROW(
      (void)schedule_from_csv("machines,1\nmachine,start,end,speed,job\n0,0,1\n"),
      std::invalid_argument);
  // Slice on an out-of-range machine is caught by Schedule::add.
  EXPECT_THROW((void)schedule_from_csv(
                   "machines,1\nmachine,start,end,speed,job\n3,0,1,1,0\n"),
               std::invalid_argument);
}

TEST(Traces, RejectsMalformedCsv) {
  EXPECT_THROW((void)instance_from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)instance_from_csv("machines,2\n"), std::invalid_argument);
  EXPECT_THROW((void)instance_from_csv("machines,2\nrelease,deadline,work\n1,2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)instance_from_csv("wrong,2\nrelease,deadline,work\n"),
               std::invalid_argument);
  EXPECT_THROW((void)load_instance("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace mpss
