// Log-bucketed histograms (S43): bucket layout, record/merge/quantile
// arithmetic on the plain HistogramData, lock-free losslessness of the atomic
// Histogram under concurrent recorders, and the Registry's zero-in-place
// reset contract for cached references.

#include <algorithm>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "mpss/obs/histogram.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/util/thread_pool.hpp"

namespace mpss::obs {
namespace {

TEST(HistogramData, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(HistogramData::bucket_of(0), 0u);
  EXPECT_EQ(HistogramData::bucket_of(1), 1u);
  EXPECT_EQ(HistogramData::bucket_of(2), 2u);
  EXPECT_EQ(HistogramData::bucket_of(3), 2u);
  EXPECT_EQ(HistogramData::bucket_of(4), 3u);
  EXPECT_EQ(HistogramData::bucket_of(1023), 10u);
  EXPECT_EQ(HistogramData::bucket_of(1024), 11u);
  EXPECT_EQ(HistogramData::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            kHistogramBuckets - 1);

  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramData::bucket_of(HistogramData::bucket_lower(i)), i) << i;
    EXPECT_EQ(HistogramData::bucket_of(HistogramData::bucket_upper(i)), i) << i;
  }
}

TEST(HistogramData, RecordTracksCountSumMinMax) {
  HistogramData h;
  EXPECT_TRUE(h.empty());
  h.record(10);
  h.record(3);
  h.record(250);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 263u);
  EXPECT_EQ(h.min, 3u);
  EXPECT_EQ(h.max, 250u);
  EXPECT_DOUBLE_EQ(h.mean(), 263.0 / 3.0);
  EXPECT_EQ(h.buckets[HistogramData::bucket_of(10)], 1u);
  EXPECT_EQ(h.buckets[HistogramData::bucket_of(250)], 1u);

  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h, HistogramData{});
}

TEST(HistogramData, MergeIsFieldWiseAdditiveWithExactMinMax) {
  HistogramData a, b;
  a.record(5);
  a.record(100);
  b.record(1);
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 113u);
  EXPECT_EQ(a.min, 1u);
  EXPECT_EQ(a.max, 100u);

  // Merging an empty histogram is the identity (min must not regress to 0).
  HistogramData before = a;
  a.merge(HistogramData{});
  EXPECT_EQ(a, before);
}

TEST(HistogramData, QuantileIsMonotoneAndClampedToMinMax) {
  HistogramData h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
  std::uint64_t median = h.quantile(0.5);
  // Log buckets: the median lands in bucket [512, 1023], near the true 500
  // only up to bucket resolution; monotonicity and range are the contract.
  EXPECT_GE(median, 256u);
  EXPECT_LE(median, 1000u);
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    std::uint64_t now = h.quantile(q);
    EXPECT_GE(now, prev);
    prev = now;
  }
  // Empty histogram: every quantile reads 0.
  EXPECT_EQ(HistogramData{}.quantile(0.5), 0u);
}

TEST(Histogram, SnapshotMatchesPlainRecordsSingleThreaded) {
  Histogram atomic;
  HistogramData plain;
  for (std::uint64_t v : {0u, 1u, 5u, 5u, 128u, 1000000u}) {
    atomic.record(v);
    plain.record(v);
  }
  EXPECT_EQ(atomic.snapshot(), plain);

  atomic.reset();
  EXPECT_TRUE(atomic.snapshot().empty());
  EXPECT_EQ(atomic.snapshot(), HistogramData{});
}

TEST(Histogram, MergeFoldsWholeDataRecords) {
  Histogram atomic;
  HistogramData batch;
  batch.record(3);
  batch.record(999);
  atomic.merge(batch);
  atomic.record(50);
  HistogramData expect = batch;
  expect.record(50);
  EXPECT_EQ(atomic.snapshot(), expect);
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  Histogram histogram;
  constexpr std::size_t kRecords = 20000;
  parallel_for(kRecords, [&histogram](std::size_t i) {
    histogram.record(static_cast<std::uint64_t>(i % 1024));
  }, 4);
  HistogramData snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kRecords);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1023u);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kRecords);
}

TEST(Histogram, RegistryReferencesSurviveReset) {
  Registry& registry = Registry::global();
  registry.reset();
  Histogram& cached = registry.histogram("test.latency_us");
  cached.record(42);
  EXPECT_EQ(registry.histogram_snapshot().at("test.latency_us").count, 1u);

  // reset() zeroes in place: the cached reference stays valid and usable.
  registry.reset();
  EXPECT_TRUE(cached.snapshot().empty());
  cached.record(7);
  EXPECT_EQ(&registry.histogram("test.latency_us"), &cached);
  EXPECT_EQ(registry.histogram_snapshot().at("test.latency_us").count, 1u);
  EXPECT_EQ(registry.histogram_snapshot().at("test.latency_us").min, 7u);
  registry.reset();
}

TEST(HistogramMap, MergeHistogramsUnionsNames) {
  HistogramMap a, b;
  a["x"].record(1);
  b["x"].record(3);
  b["y"].record(9);
  merge_histograms(a, b);
  EXPECT_EQ(a.at("x").count, 2u);
  EXPECT_EQ(a.at("x").max, 3u);
  EXPECT_EQ(a.at("y").count, 1u);
}

TEST(ScopedHistogramTimerTest, RecordsElapsedMicrosecondsOnDestruction) {
  HistogramData h;
  {
    ScopedHistogramTimer timer(h);
    // Busy-wait a hair so the duration is measurable but the test stays fast.
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 10000; ++i) x = x + static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(h.count, 1u);  // always records, even sub-microsecond scopes
}

}  // namespace
}  // namespace mpss::obs
