// Prometheus exposition (S47): format fidelity of obs::render_prometheus,
// name sanitization, cumulative histogram buckets, and the mpss_served
// --metrics-port HTTP listener answering a raw-socket scrape.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/net/framing.hpp"
#include "mpss/net/metrics_http.hpp"
#include "mpss/obs/counters.hpp"
#include "mpss/obs/export.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/registry.hpp"

namespace mpss::obs {
namespace {

// ---- exposition-format checker ---------------------------------------------

/// Validates the text exposition format 0.0.4 line by line: comments are
/// "# HELP name ..." or "# TYPE name counter|histogram"; samples are
/// "name[{labels}] value" with a parseable value; every sample's base name was
/// announced by a preceding TYPE line; counter samples end in _total.
void check_exposition(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::string current_metric;
  std::string current_type;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name;
      comment >> hash >> keyword >> name;
      ASSERT_TRUE(keyword == "HELP" || keyword == "TYPE") << line;
      if (keyword == "TYPE") {
        std::string type;
        comment >> type;
        ASSERT_TRUE(type == "counter" || type == "histogram") << line;
        current_metric = name;
        current_type = type;
      }
      continue;
    }
    auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string sample = line.substr(0, space);
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    std::string base = sample.substr(0, sample.find('{'));
    for (char c : base) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    if (current_type == "counter") {
      EXPECT_EQ(base, current_metric) << line;
      EXPECT_TRUE(base.size() >= 6 &&
                  base.compare(base.size() - 6, 6, "_total") == 0)
          << line;
    } else {
      // Histogram samples are metric_bucket / metric_sum / metric_count.
      EXPECT_EQ(base.rfind(current_metric, 0), 0u) << line;
    }
  }
}

// ---- render_prometheus -----------------------------------------------------

TEST(Export, SanitizesMetricNames) {
  EXPECT_EQ(prometheus_name("net.request_us"), "net_request_us");
  EXPECT_EQ(prometheus_name("a-b c.d"), "a_b_c_d");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("ok_name:sub"), "ok_name:sub");
}

TEST(Export, EscapesLabelValues) {
  EXPECT_EQ(prometheus_escape("plain"), "plain");
  EXPECT_EQ(prometheus_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Export, RendersCountersWithTotalSuffix) {
  Counters counters;
  counters.add("net.requests", 42);
  counters.add("service.cache_hit", 7);
  std::string text = render_prometheus(counters, HistogramMap{});
  EXPECT_NE(text.find("# HELP mpss_net_requests_total mpss counter "
                      "net.requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mpss_net_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nmpss_net_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("mpss_service_cache_hit_total 7"), std::string::npos);
  check_exposition(text);
}

TEST(Export, RendersHistogramsAsCumulativeBuckets) {
  HistogramData data;
  for (std::uint64_t v : {1, 2, 3, 100, 1000}) data.record(v);
  HistogramMap histograms;
  histograms["net.request_us"] = data;
  std::string text = render_prometheus(Counters{}, histograms);
  EXPECT_NE(text.find("# TYPE mpss_net_request_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("mpss_net_request_us_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("mpss_net_request_us_sum 1106"), std::string::npos);
  EXPECT_NE(text.find("mpss_net_request_us_count 5"), std::string::npos);
  check_exposition(text);

  // Bucket counts are cumulative: each le= line's count is >= the previous.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t previous = 0;
  std::size_t buckets = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("mpss_net_request_us_bucket", 0) != 0) continue;
    ++buckets;
    std::uint64_t count = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, previous) << line;
    previous = count;
  }
  EXPECT_GT(buckets, 2u);
  EXPECT_EQ(previous, 5u);  // the +Inf bucket equals the total count
}

TEST(Export, EmptyRegistryRendersEmptyDocument) {
  EXPECT_EQ(render_prometheus(Counters{}, HistogramMap{}), "");
}

TEST(Export, GlobalSnapshotFormIncludesRegistryHistograms) {
  Registry::global().add("export_test.counter", 3);
  Registry::global().histogram("export_test.latency_us").record(250);
  std::string text = render_prometheus();
  EXPECT_NE(text.find("mpss_export_test_counter_total"), std::string::npos);
  EXPECT_NE(text.find("mpss_export_test_latency_us_count 1"),
            std::string::npos);
  check_exposition(text);
}

// ---- percentiles helper ----------------------------------------------------

TEST(Export, PercentilesAreMonotoneAndBracketTheSamples) {
  HistogramData data;
  for (std::uint64_t v = 1; v <= 1000; ++v) data.record(v);
  Percentiles p = percentiles(data);
  EXPECT_LE(p.p50, p.p90);
  EXPECT_LE(p.p90, p.p99);
  // Log2 buckets: quantiles are approximate but must stay within a bucket
  // (factor of two) of the exact answer.
  EXPECT_GE(p.p50, 250u);
  EXPECT_LE(p.p50, 1024u);
  EXPECT_GE(p.p99, 512u);
  EXPECT_LE(p.p99, 2048u);
}

}  // namespace
}  // namespace mpss::obs

// ---- live HTTP scrape ------------------------------------------------------

namespace mpss::net {
namespace {

/// One blocking HTTP/1.0 exchange against localhost:port.
std::string http_get(std::uint16_t port, const std::string& request) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  EXPECT_TRUE(fd.valid());
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                      sizeof address),
            0);
  EXPECT_EQ(::send(fd.get(), request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd.get(), buffer, sizeof buffer, 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(MetricsHttp, ServesPrometheusSnapshotOnGetMetrics) {
  obs::Registry::global().add("http_test.scraped", 5);
  MetricsHttpServer server("127.0.0.1", 0);
  ASSERT_NE(server.port(), 0);

  std::string response =
      http_get(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  auto body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string body = response.substr(body_at + 4);
  EXPECT_NE(body.find("mpss_http_test_scraped_total"), std::string::npos);
  mpss::obs::check_exposition(body);

  // The scrape itself is counted, and the listener serves repeat connections.
  std::string again =
      http_get(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("mpss_net_metrics_scrapes_total"), std::string::npos);
}

TEST(MetricsHttp, UnknownRoutesGet404) {
  MetricsHttpServer server("127.0.0.1", 0);
  std::string response =
      http_get(server.port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << response;
  std::string post = http_get(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << post;
}

}  // namespace
}  // namespace mpss::net
