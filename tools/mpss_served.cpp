// mpss_served: the solve daemon and its command-line client (S45).
//
// Daemon mode (the default) binds a loopback TCP socket, prints the bound
// address as "listening on <host>:<port>" (flushed, so scripts can scrape an
// ephemeral port), and serves the framed JSON protocol of net/protocol.hpp
// until a client sends the "shutdown" verb or the process receives SIGINT/
// SIGTERM:
//
//   mpss_served [--host=127.0.0.1] [--port=0] [--threads=N] [--queue=N]
//               [--cache=N] [--trace=out.jsonl] [--metrics-port=N]
//               [--slow-ms=N] [--idle-timeout-ms=N] [--frame-timeout-ms=N]
//               [--max-inflight=N]
//
// --metrics-port starts the Prometheus scrape endpoint (GET /metrics, S47) on
// the same host; the bound port is printed as "metrics on <host>:<port>".
// --slow-ms turns on the structured completion log on stderr: one JSON line
// per request whose wall time meets the threshold (0 logs every request).
// --idle-timeout-ms / --frame-timeout-ms set the per-connection read deadlines
// (S48): idle bounds the wait for a new frame, frame bounds a started frame's
// arrival (the slowloris cutoff). --max-inflight caps pipelined requests per
// connection before reads stall.
//
// Client mode (--connect) drives a running daemon over the same protocol --
// the shell-scriptable face of net::SolveClient, and what the CI integration
// leg uses:
//
//   mpss_served --connect=HOST:PORT --health
//   mpss_served --connect=HOST:PORT --stats
//   mpss_served --connect=HOST:PORT --metrics
//   mpss_served --connect=HOST:PORT --shutdown
//   mpss_served --connect=HOST:PORT [--engine=NAME] [--deadline-ms=N]
//               [--priority=N] [--trace=out.jsonl] [--connect-timeout-ms=N]
//               [--io-timeout-ms=N] [--budget-ms=N] [--retries=N]
//               instance.json [more.json ...]
//
// The client-side deadlines and retries (S48) apply to every client-mode verb:
// --connect-timeout-ms bounds the TCP connect, --io-timeout-ms each
// send/recv, --budget-ms the whole round trip (retries and backoff included),
// and --retries sets the attempt cap for idempotent verbs (shutdown never
// retries).
//
// --metrics prints the daemon's Prometheus snapshot (the "metrics" verb).
// --trace in client mode records the client-side trace -- each solve runs in a
// "client.solve" span whose trace context travels to the daemon, so the two
// JSONL files merge into one timeline via `mpss_trace --chrome client.jsonl
// server.jsonl`.
//
// Solve mode prints one line per instance: "<path> <status> <energy>
// [<detail>]". Exit codes: 0 on success (every solve returned status ok),
// 1 on usage errors, 2 when the daemon cannot be reached or the transport
// fails, 3 when any solve came back with a non-ok status.

#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mpss/core/instance_json.hpp"
#include "mpss/net/client.hpp"
#include "mpss/net/metrics_http.hpp"
#include "mpss/net/server.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/cli.hpp"
#include "mpss/workload/traces.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitTransport = 2;
constexpr int kExitSolveFailed = 3;

const char* kUsage =
    "usage: mpss_served [--host=A] [--port=N] [--threads=N] [--queue=N]\n"
    "                   [--cache=N] [--trace=out.jsonl] [--metrics-port=N]\n"
    "                   [--slow-ms=N] [--idle-timeout-ms=N]\n"
    "                   [--frame-timeout-ms=N] [--max-inflight=N]\n"
    "       mpss_served --connect=HOST:PORT "
    "(--health|--stats|--metrics|--shutdown)\n"
    "       mpss_served --connect=HOST:PORT [--engine=NAME] [--deadline-ms=N]\n"
    "                   [--priority=N] [--trace=out.jsonl]\n"
    "                   [--connect-timeout-ms=N] [--io-timeout-ms=N]\n"
    "                   [--budget-ms=N] [--retries=N] instance.json "
    "[more.json ...]\n";

// Signal handling: the handler only flips a flag; a watcher thread turns it
// into the graceful shutdown (signal context cannot touch mutexes).
std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true, std::memory_order_relaxed); }

int run_daemon(const mpss::CliArgs& args) {
  mpss::net::SolveServerOptions options;
  options.host = args.get("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.service.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.service.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 256));
  options.service.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 128));
  options.slow_ms = args.get_int("slow-ms", -1);
  options.idle_timeout_ms = args.get_int("idle-timeout-ms", 0);
  options.frame_timeout_ms = args.get_int("frame-timeout-ms", 30'000);
  options.max_inflight_per_connection =
      static_cast<std::size_t>(args.get_int("max-inflight", 64));

  std::optional<mpss::obs::JsonlSink> trace_sink;
  std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    try {
      trace_sink.emplace(trace_path);
    } catch (const std::invalid_argument&) {
      std::cerr << "mpss_served: cannot open trace file '" << trace_path << "'\n";
      return kExitUsage;
    }
    mpss::obs::Registry::global().attach_sink(&*trace_sink);
  }

  mpss::net::SolveServer server(std::move(options));
  std::cout << "listening on " << args.get("host", "127.0.0.1") << ":"
            << server.port() << std::endl;  // flushed: scripts scrape this line

  std::optional<mpss::net::MetricsHttpServer> metrics;
  std::int64_t metrics_port = args.get_int("metrics-port", -1);
  if (metrics_port >= 0) {
    metrics.emplace(args.get("host", "127.0.0.1"),
                    static_cast<std::uint16_t>(metrics_port));
    std::cout << "metrics on " << args.get("host", "127.0.0.1") << ":"
              << metrics->port() << std::endl;  // also scraped by scripts
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::thread watcher([&server] {
    while (!g_signalled.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.shutdown();
  });
  server.wait();  // returns on SIGINT/SIGTERM or a client's "shutdown" verb
  g_signalled.store(true, std::memory_order_relaxed);
  watcher.join();
  if (!trace_path.empty()) {
    mpss::obs::Registry::global().attach_sink(nullptr);
  }
  std::cout << "drained\n";
  return kExitOk;
}

int run_client(const mpss::CliArgs& args, const std::string& endpoint) {
  auto colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "mpss_served: --connect expects HOST:PORT\n" << kUsage;
    return kExitUsage;
  }
  std::string host = endpoint.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(endpoint.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "mpss_served: bad port in '" << endpoint << "'\n";
    return kExitUsage;
  }

  // Client-side tracing: with a sink attached, every round trip below runs in
  // a client.solve span whose context travels to the daemon (client.hpp).
  std::optional<mpss::obs::JsonlSink> trace_sink;
  std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    try {
      trace_sink.emplace(trace_path);
    } catch (const std::invalid_argument&) {
      std::cerr << "mpss_served: cannot open trace file '" << trace_path << "'\n";
      return kExitUsage;
    }
    mpss::obs::Registry::global().attach_sink(&*trace_sink);
  }
  struct SinkDetach {
    bool armed;
    ~SinkDetach() {
      if (armed) mpss::obs::Registry::global().attach_sink(nullptr);
    }
  } detach{!trace_path.empty()};

  try {
    mpss::net::SolveClientOptions client_options;
    client_options.connect_timeout_ms = args.get_int("connect-timeout-ms", 0);
    client_options.io_timeout_ms = args.get_int("io-timeout-ms", 0);
    client_options.request_budget_ms = args.get_int("budget-ms", 0);
    client_options.retry.max_attempts =
        static_cast<int>(args.get_int("retries", 3));
    mpss::net::SolveClient client(host, static_cast<std::uint16_t>(port),
                                  client_options);
    if (args.get_bool("health", false)) {
      std::cout << mpss::json::serialize(client.health()) << "\n";
      return kExitOk;
    }
    if (args.get_bool("stats", false)) {
      std::cout << mpss::json::serialize(client.stats()) << "\n";
      return kExitOk;
    }
    if (args.get_bool("metrics", false)) {
      std::cout << client.metrics();
      return kExitOk;
    }
    if (args.get_bool("shutdown", false)) {
      std::cout << mpss::json::serialize(client.request_shutdown()) << "\n";
      return kExitOk;
    }

    if (args.positional().empty()) {
      std::cerr << "mpss_served: no instance files given\n" << kUsage;
      return kExitUsage;
    }
    mpss::SolveOptions options;
    std::string engine = args.get("engine", "exact");
    if (auto parsed = mpss::engine_from_name(engine)) {
      options.engine = *parsed;
    } else {
      std::cerr << "mpss_served: unknown engine '" << engine << "'\n";
      return kExitUsage;
    }
    auto priority = static_cast<int>(args.get_int("priority", 0));
    std::int64_t deadline_ms = args.get_int("deadline-ms", 0);

    bool all_ok = true;
    for (const std::string& path : args.positional()) {
      mpss::Instance instance = mpss::load_instance(path);
      mpss::SolveResult result =
          client.solve(instance, options, priority, deadline_ms);
      std::cout << path << " " << mpss::solve_status_name(result.status) << " "
                << result.energy;
      if (!result.error_detail.empty()) std::cout << " " << result.error_detail;
      std::cout << "\n";
      all_ok = all_ok && result.ok();
    }
    return all_ok ? kExitOk : kExitSolveFailed;
  } catch (const mpss::net::FrameError& error) {
    std::cerr << "mpss_served: transport error: " << error.what() << "\n";
    return kExitTransport;
  } catch (const mpss::net::ProtocolError& error) {
    std::cerr << "mpss_served: daemon error ("
              << mpss::net::error_code_name(error.code()) << "): " << error.what()
              << "\n";
    return kExitTransport;
  } catch (const std::exception& error) {
    std::cerr << "mpss_served: " << error.what() << "\n";
    return kExitTransport;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mpss::CliArgs args(argc, argv,
                       {"host", "port", "threads", "queue", "cache", "trace",
                        "connect", "health", "stats", "metrics", "shutdown",
                        "engine", "deadline-ms", "priority", "metrics-port",
                        "slow-ms", "idle-timeout-ms", "frame-timeout-ms",
                        "max-inflight", "connect-timeout-ms", "io-timeout-ms",
                        "budget-ms", "retries", "help"});
    if (args.get_bool("help", false)) {
      std::cout << kUsage;
      return kExitOk;
    }
    std::string endpoint = args.get("connect", "");
    if (!endpoint.empty()) return run_client(args, endpoint);
    if (!args.positional().empty()) {
      std::cerr << "mpss_served: daemon mode takes no positional arguments\n"
                << kUsage;
      return kExitUsage;
    }
    return run_daemon(args);
  } catch (const std::exception& error) {
    std::cerr << "mpss_served: " << error.what() << "\n" << kUsage;
    return kExitUsage;
  }
}
