// Regenerates the golden regression corpus in data/corpus/.
//
// For each (family, seed) pair below, writes the instance trace and a golden
// file recording the EXACT optimal per-job speeds (rational strings). The
// test suite (tests/test_corpus.cpp) recomputes them and demands exact equality,
// pinning the offline algorithm's output against future refactors.
//
// Usage: tools/make_corpus <output-directory>

#include <fstream>
#include <iostream>

#include "mpss/mpss.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  if (argc != 2) {
    std::cerr << "usage: make_corpus <output-directory>\n";
    return 2;
  }
  std::string directory = argv[1];

  struct Entry {
    const char* name;
    Instance instance;
  };
  std::vector<Entry> corpus;
  corpus.push_back({"uniform_m3",
                    generate_uniform({.jobs = 12, .machines = 3, .horizon = 20,
                                      .max_window = 9, .max_work = 7}, 101)});
  corpus.push_back({"uniform_m1",
                    generate_uniform({.jobs = 10, .machines = 1, .horizon = 16,
                                      .max_window = 8, .max_work = 6}, 102)});
  corpus.push_back({"bursty_m4",
                    generate_bursty({.bursts = 3, .jobs_per_burst = 4, .machines = 4,
                                     .horizon = 24, .burst_window = 5, .max_work = 6},
                                    103)});
  corpus.push_back({"laminar_m2",
                    generate_laminar({.jobs = 12, .machines = 2, .depth = 4,
                                      .max_work = 8}, 104)});
  corpus.push_back({"agreeable_m3",
                    generate_agreeable({.jobs = 12, .machines = 3, .horizon = 22,
                                        .min_window = 2, .max_window = 8,
                                        .max_work = 6}, 105)});
  corpus.push_back({"periodic_m2",
                    generate_periodic({.tasks = 4, .machines = 2, .hyperperiods = 1,
                                       .max_work = 5}, 106)});
  corpus.push_back({"heavytail_m4",
                    generate_heavy_tail({.jobs = 14, .machines = 4, .horizon = 30,
                                         .shape = 1.4, .max_work = 32}, 107)});
  corpus.push_back({"surprise_m2",
                    generate_surprise({.jobs = 12, .machines = 2, .horizon = 20,
                                       .max_work = 6, .urgent_window = 3}, 108)});
  corpus.push_back({"stack_m1", generate_avr_adversary(10, 1)});
  corpus.push_back({"fractional_m2",
                    Instance({Job{Q(0), Q(1, 2), Q(2, 3)}, Job{Q(1, 3), Q(5, 6), Q(1, 7)},
                              Job{Q(1, 4), Q(2), Q(3, 2)}, Job{Q(0), Q(2), Q(1)}},
                             2)});

  for (const Entry& entry : corpus) {
    std::string base = directory + "/" + entry.name;
    save_instance(entry.instance, base + ".instance.csv");
    // Canonical JSON sibling (core/instance_json.hpp): the same codec the wire
    // protocol uses, so the corpus doubles as protocol test vectors.
    save_instance(entry.instance, base + ".instance.json");

    auto result = optimal_schedule(entry.instance);
    std::ofstream golden(base + ".golden.csv");
    if (!golden) {
      std::cerr << "cannot write " << base << ".golden.csv\n";
      return 1;
    }
    golden << "job,speed\n";
    for (std::size_t k = 0; k < entry.instance.size(); ++k) {
      golden << k << "," << result.speed_of_job(k).to_string() << "\n";
    }
    std::cout << entry.name << ": " << entry.instance.summary() << " -> "
              << result.phases.size() << " phases\n";
  }
  std::cout << "corpus written to " << directory << "\n";
  return 0;
}
