// mpss_trace: summarizes JSONL solver traces (obs::JsonlSink output) into
// per-stage tables, a hierarchical span profile, a Prometheus snapshot, or a
// Chrome trace file.
//
//   mpss_trace <trace.jsonl> [more.jsonl ...] [--csv] [--events] [--report]
//              [--top=N] [--chrome=out.json] [--prom]
//
// Multiple trace files are merged: the tables and --report aggregate over the
// concatenation, and --chrome joins the files into ONE timeline -- each file
// becomes a Chrome "pid", span ids are namespaced per file, and a span whose
// begin event carries "rparent" (a span id of a *peer process*, stamped by the
// daemon when a request arrived with the protocol's trace header) is
// re-parented under the matching span of the other file, which is how a
// client's client.solve span becomes the ancestor of the server's
// net.request -> service.request -> <engine> subtree. Steady-clock timestamps
// on Linux come from the machine-wide CLOCK_MONOTONIC, so cross-process
// timelines align without negotiation.
//
// Default mode prints, per engine run found in the trace:
//   * an event-kind summary (count per kind),
//   * a per-phase table (rounds, removals, final speed) for the offline
//     engines -- the paper's phase structure read straight off the trace,
//   * a warm-start summary (resumed flow rounds and their BFS passes) when the
//     offline engines ran incrementally,
//   * an arena-memory summary (scratch capacity, fallback heap blocks, warm
//     reuse cycles) when the engines emitted "<engine>.arena" events,
//   * a simplex summary when LP pivots are present,
//   * a service table (requests by SolveStatus, cache hits/misses/evictions)
//     when BatchSolver events are present,
//   * a net table (requests, responses, bytes, disconnect cancellations) when
//     solve-daemon events are present,
//   * an arrival table when online re-planning events are present.
//
// --report prints the span profile instead: per span label, the call count,
// total (inclusive) seconds, self seconds (total minus direct children), and
// the self share of all span time, hottest first (--top=N rows, default 20).
//
// --chrome=out.json writes the span tree in the Chrome trace-event format
// ({"traceEvents": [...]}, "X" complete events plus "i" instants), loadable in
// chrome://tracing and Perfetto.
//
// --prom replays the trace into a Prometheus text-format snapshot on stdout:
// one counter per kCounter label (occurrence count), span durations as
// span_<label>_us histograms, and the daemon's request/queue-wait latency
// histograms reconstructed from net.response / service.queue_wait events --
// the offline twin of the live GET /metrics endpoint.
//
// Exit codes (stable, CI-checked):
//   0  success
//   1  usage error (bad flags, missing positional, --help is still 0)
//   2  input file missing or unreadable
//   3  malformed JSONL (parse error; message names the offending line)
//
// --csv switches the tables to RFC-4180 CSV; --events dumps the raw events
// back out (parse check only).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mpss/obs/counters.hpp"
#include "mpss/obs/export.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/cli.hpp"
#include "mpss/util/table.hpp"

namespace {

using mpss::Table;
using mpss::obs::EventKind;
using mpss::obs::TraceEvent;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitMissingFile = 2;
constexpr int kExitMalformed = 3;

void print_table(const Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Label prefix up to the first '.' ("optimal.round" -> "optimal"): one engine
/// run's events share a prefix, which keeps mixed traces readable.
std::string label_prefix(const std::string& label) {
  auto dot = label.find('.');
  return dot == std::string::npos ? label : label.substr(0, dot);
}

void kind_summary(const std::vector<TraceEvent>& events, bool csv) {
  std::map<std::string, std::size_t> counts;
  for (const TraceEvent& event : events) {
    ++counts[mpss::obs::event_kind_name(event.kind)];
  }
  Table table({"kind", "events"});
  for (const auto& [kind, count] : counts) table.row(kind, count);
  print_table(table, csv);
}

void phase_tables(const std::vector<TraceEvent>& events, bool csv) {
  // Per engine prefix: phase -> (rounds from kPhaseEnd, removal count).
  struct PhaseRow {
    std::size_t rounds = 0;
    std::size_t removals = 0;
    double speed = 0.0;
    bool seen = false;
  };
  std::map<std::string, std::map<std::uint64_t, PhaseRow>> engines;
  for (const TraceEvent& event : events) {
    std::string prefix = label_prefix(event.label);
    if (event.kind == EventKind::kPhaseEnd) {
      PhaseRow& row = engines[prefix][event.a];
      row.rounds = event.b;
      row.speed = event.value;
      row.seen = true;
    } else if (event.kind == EventKind::kCandidateRemoved) {
      ++engines[prefix][event.a].removals;
    }
  }
  for (const auto& [engine, phases] : engines) {
    std::cout << "phases [" << engine << "]\n";
    Table table({"phase", "rounds", "removals", "speed"});
    std::size_t total_rounds = 0;
    for (const auto& [phase, row] : phases) {
      table.row(phase, row.rounds, row.removals, Table::num(row.speed, 6));
      total_rounds += row.rounds;
    }
    table.row("total", total_rounds,
              std::count_if(events.begin(), events.end(),
                            [&engine](const TraceEvent& e) {
                              return e.kind == EventKind::kCandidateRemoved &&
                                     label_prefix(e.label) == engine;
                            }),
              "");
    print_table(table, csv);
  }
}

void warm_start_table(const std::vector<TraceEvent>& events, bool csv) {
  // The offline engines emit one "<engine>.warm_start" kCounter event per
  // resumed flow round (a = phase, b = round, value = resume BFS passes).
  struct WarmRow {
    std::size_t resumes = 0;
    double resume_bfs = 0.0;
  };
  std::map<std::string, WarmRow> engines;
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kCounter) continue;
    const std::string& label = event.label;
    if (label.size() < 11 || label.compare(label.size() - 11, 11, ".warm_start") != 0) {
      continue;
    }
    WarmRow& row = engines[label_prefix(label)];
    ++row.resumes;
    row.resume_bfs += event.value;
  }
  if (engines.empty()) return;
  std::cout << "warm starts\n";
  Table table({"engine", "resumes", "resume_bfs"});
  for (const auto& [engine, row] : engines) {
    table.row(engine, row.resumes, static_cast<std::size_t>(row.resume_bfs));
  }
  print_table(table, csv);
}

void memory_table(const std::vector<TraceEvent>& events, bool csv) {
  // The offline engines emit one "<engine>.arena" kCounter event per solve
  // (a = arena capacity bytes, b = fallback heap blocks this solve, value =
  // cumulative warm reuse cycles of the pooled arena). A warm solve shows
  // fallbacks == 0; capacity is the high-water scratch footprint.
  struct MemRow {
    std::size_t solves = 0;
    std::size_t arena_bytes = 0;  // max over solves
    std::size_t fallbacks = 0;    // summed over solves
    double reuses = 0.0;          // max (the counter is cumulative)
  };
  std::map<std::string, MemRow> engines;
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kCounter) continue;
    const std::string& label = event.label;
    if (label.size() < 6 || label.compare(label.size() - 6, 6, ".arena") != 0) {
      continue;
    }
    MemRow& row = engines[label_prefix(label)];
    ++row.solves;
    row.arena_bytes = std::max(row.arena_bytes, static_cast<std::size_t>(event.a));
    row.fallbacks += static_cast<std::size_t>(event.b);
    row.reuses = std::max(row.reuses, event.value);
  }
  if (engines.empty()) return;
  std::cout << "arena memory\n";
  Table table({"engine", "solves", "arena_bytes", "fallback_allocs", "reuses"});
  for (const auto& [engine, row] : engines) {
    table.row(engine, row.solves, row.arena_bytes, row.fallbacks,
              static_cast<std::size_t>(row.reuses));
  }
  print_table(table, csv);
}

void simplex_table(const std::vector<TraceEvent>& events, bool csv) {
  std::size_t pivots = 0;
  std::size_t degenerate = 0;
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kSimplexPivot) continue;
    ++pivots;
    if (event.value <= 1e-9) ++degenerate;
  }
  if (pivots == 0) return;
  std::cout << "simplex\n";
  Table table({"pivots", "degenerate"});
  table.row(pivots, degenerate);
  print_table(table, csv);
}

void service_table(const std::vector<TraceEvent>& events, bool csv) {
  // The BatchSolver emits one "service.done" kCounter event per completed
  // request (a = SolveStatus, b = 1 when served from the cache, value = request
  // seconds) plus cache_hit/cache_miss/cache_evict markers.
  struct StatusRow {
    std::size_t requests = 0;
    std::size_t cached = 0;
    double seconds = 0.0;
  };
  std::map<std::uint64_t, StatusRow> by_status;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kCounter) continue;
    if (event.label == "service.done") {
      StatusRow& row = by_status[event.a];
      ++row.requests;
      if (event.b != 0) ++row.cached;
      row.seconds += event.value;
    } else if (event.label == "service.cache_hit") {
      ++hits;
    } else if (event.label == "service.cache_miss") {
      ++misses;
    } else if (event.label == "service.cache_evict") {
      ++evictions;
    }
  }
  if (by_status.empty() && hits + misses + evictions == 0) return;
  std::cout << "service\n";
  Table table({"status", "requests", "cached", "seconds"});
  for (const auto& [status, row] : by_status) {
    table.row(mpss::solve_status_name(static_cast<mpss::SolveStatus>(status)),
              row.requests, row.cached, Table::num(row.seconds, 6));
  }
  print_table(table, csv);
  std::cout << "service cache\n";
  Table cache({"hits", "misses", "evictions"});
  cache.row(hits, misses, evictions);
  print_table(cache, csv);
  // Each worker emits one "service.queue_wait" kCounter event per dispatched
  // request (a = admission-to-dispatch microseconds): the offline rebuild of
  // the daemon's service.queue_wait_us histogram.
  mpss::obs::HistogramData queue_wait;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kCounter && event.label == "service.queue_wait") {
      queue_wait.record(event.a);
    }
  }
  if (!queue_wait.empty()) {
    mpss::obs::Percentiles wait = mpss::obs::percentiles(queue_wait);
    std::cout << "service queue wait (us)\n";
    Table waits({"count", "p50", "p90", "p99", "max"});
    waits.row(queue_wait.count, wait.p50, wait.p90, wait.p99, queue_wait.max);
    print_table(waits, csv);
  }
}

void net_table(const std::vector<TraceEvent>& events, bool csv) {
  // The solve daemon (net/server.hpp) emits one "net.request" kCounter event
  // per decoded frame (a = payload bytes) and one "net.response" per written
  // response (a = payload bytes, b = solves in the response, value = seconds
  // from receipt to write), plus disconnect-cancellation and shutdown markers.
  std::size_t requests = 0;
  std::size_t responses = 0;
  std::size_t solves = 0;
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  double seconds = 0.0;
  std::size_t disconnect_cancels = 0;
  std::size_t shutdowns = 0;
  mpss::obs::HistogramData request_us;  // per-response receipt-to-write latency
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kCounter) continue;
    if (event.label == "net.request") {
      ++requests;
      bytes_in += static_cast<double>(event.a);
    } else if (event.label == "net.response") {
      ++responses;
      bytes_out += static_cast<double>(event.a);
      solves += event.b;
      seconds += event.value;
      if (event.value > 0.0) {
        request_us.record(static_cast<std::uint64_t>(event.value * 1e6));
      }
    } else if (event.label == "net.disconnect_cancel") {
      disconnect_cancels += event.a;
    } else if (event.label == "net.shutdown_verb") {
      ++shutdowns;
    }
  }
  if (requests + responses + disconnect_cancels + shutdowns == 0) return;
  std::cout << "net\n";
  Table table({"requests", "responses", "solves", "bytes_in", "bytes_out",
               "seconds", "cancelled", "shutdowns"});
  table.row(requests, responses, solves, static_cast<std::size_t>(bytes_in),
            static_cast<std::size_t>(bytes_out), Table::num(seconds, 6),
            disconnect_cancels, shutdowns);
  print_table(table, csv);
  if (!request_us.empty()) {
    mpss::obs::Percentiles latency = mpss::obs::percentiles(request_us);
    std::cout << "net request latency (us)\n";
    Table latencies({"count", "p50", "p90", "p99", "max"});
    latencies.row(request_us.count, latency.p50, latency.p90, latency.p99,
                  request_us.max);
    print_table(latencies, csv);
  }
}

void arrival_table(const std::vector<TraceEvent>& events, bool csv) {
  bool any = false;
  Table table({"arrival", "available", "plan_seconds"});
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kArrival) continue;
    any = true;
    table.row(event.a, event.b, Table::num(event.value, 6));
  }
  if (!any) return;
  std::cout << "arrivals\n";
  print_table(table, csv);
}

// ---- span profile (--report) and Chrome export (--chrome) ------------------

/// One completed span, reassembled from a kSpanBegin/kSpanEnd pair. Span ids
/// come from one well *per process*, so they are unique across threads within
/// a file but collide between files -- the Chrome merge namespaces them.
struct SpanRecord {
  std::string label;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;         // 0 = root (within its own file)
  std::uint64_t remote_parent = 0;  // span id of a PEER process (another file)
  std::uint64_t trace = 0;          // distributed trace id; 0 = untraced
  std::uint64_t thread = 0;         // dense obs::thread_index()
  std::size_t file = 0;             // input-file index (Chrome pid)
  double start_seconds = 0.0;       // steady-clock epoch (begin event timestamp)
  double duration_seconds = 0.0;    // kSpanEnd value
  bool closed = false;
};

std::vector<SpanRecord> collect_spans(const std::vector<TraceEvent>& events,
                                      std::size_t file = 0) {
  std::map<std::uint64_t, std::size_t> index;  // span id -> position
  std::vector<SpanRecord> spans;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kSpanBegin) {
      SpanRecord record;
      record.label = event.label;
      record.id = event.a;
      record.parent = event.b;
      record.remote_parent = event.remote_parent;
      record.trace = event.trace;
      record.thread = static_cast<std::uint64_t>(event.value);
      record.file = file;
      record.start_seconds = event.t_seconds;
      index[record.id] = spans.size();
      spans.push_back(std::move(record));
    } else if (event.kind == EventKind::kSpanEnd) {
      auto it = index.find(event.a);
      if (it == index.end()) continue;  // end without begin: truncated trace
      spans[it->second].duration_seconds = event.value;
      spans[it->second].closed = true;
    }
  }
  // Unclosed spans (crash or truncated capture) are dropped: without an end
  // event there is no duration to attribute.
  std::erase_if(spans, [](const SpanRecord& s) { return !s.closed; });
  return spans;
}

void span_report(const std::vector<std::vector<TraceEvent>>& files, bool csv,
                 std::size_t top) {
  std::vector<SpanRecord> spans;
  for (std::size_t file = 0; file < files.size(); ++file) {
    std::vector<SpanRecord> collected = collect_spans(files[file], file);
    spans.insert(spans.end(), std::make_move_iterator(collected.begin()),
                 std::make_move_iterator(collected.end()));
  }
  if (spans.empty()) {
    std::cout << "no spans in trace (emit with obs::SpanScope)\n";
    return;
  }

  // Self time = inclusive duration minus direct children's inclusive
  // durations. Span ids collide between files, so the key is (file, id).
  std::map<std::pair<std::size_t, std::uint64_t>, double> children_seconds;
  for (const SpanRecord& span : spans) {
    if (span.parent != 0) {
      children_seconds[{span.file, span.parent}] += span.duration_seconds;
    }
  }

  struct LabelRow {
    std::size_t count = 0;
    double total_seconds = 0.0;
    double self_seconds = 0.0;
    mpss::obs::HistogramData durations_us;  // per-call inclusive duration
  };
  std::map<std::string, LabelRow> by_label;
  double root_seconds = 0.0;  // trace wall time attributed to root spans
  double self_total = 0.0;
  for (const SpanRecord& span : spans) {
    LabelRow& row = by_label[span.label];
    ++row.count;
    row.total_seconds += span.duration_seconds;
    row.durations_us.record(
        static_cast<std::uint64_t>(span.duration_seconds * 1e6));
    double self = span.duration_seconds;
    auto it = children_seconds.find({span.file, span.id});
    if (it != children_seconds.end()) self -= it->second;
    // Clock skew between a parent's duration and its children's sum can push
    // self fractionally below zero; clamp so shares stay in [0, 100].
    self = std::max(self, 0.0);
    row.self_seconds += self;
    self_total += self;
    if (span.parent == 0) root_seconds += span.duration_seconds;
  }

  std::vector<std::pair<std::string, LabelRow>> rows(by_label.begin(), by_label.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_seconds > b.second.self_seconds;
  });
  if (rows.size() > top) rows.resize(top);

  std::cout << "span profile (" << spans.size() << " spans, "
            << Table::num(root_seconds, 6) << "s in root spans)\n";
  Table table({"label", "count", "total_s", "self_s", "self_pct", "p50_us",
               "p90_us", "p99_us"});
  for (const auto& [label, row] : rows) {
    double pct = self_total > 0.0 ? 100.0 * row.self_seconds / self_total : 0.0;
    mpss::obs::Percentiles latency = mpss::obs::percentiles(row.durations_us);
    table.row(label, row.count, Table::num(row.total_seconds, 6),
              Table::num(row.self_seconds, 6), Table::num(pct, 1), latency.p50,
              latency.p90, latency.p99);
  }
  print_table(table, csv);
}

/// Writes the Chrome trace-event format (the catapult JSON schema Perfetto and
/// chrome://tracing load): spans as "X" complete events, other timestamped
/// events as "i" instants. Timestamps are microseconds relative to the
/// earliest event across every file, so the viewer opens at t=0 and (on
/// Linux, where steady_clock is the machine-wide CLOCK_MONOTONIC) the files'
/// timelines align without negotiation.
///
/// Merge model: input file i becomes Chrome pid i, and its span ids are
/// namespaced as (i << 32) + id so per-process wells cannot collide -- file 0
/// keeps its raw ids, which keeps single-file output byte-identical to the
/// pre-merge format. A span with an rparent (a peer-process parent recorded by
/// the daemon) is re-parented under the span of *another* file with that raw
/// id and the same trace id; with three or more processes sharing a trace the
/// first match wins (the wire does not carry a process identity).
bool write_chrome_trace(const std::vector<std::vector<TraceEvent>>& files,
                        const std::string& path) {
  std::vector<SpanRecord> spans;
  for (std::size_t file = 0; file < files.size(); ++file) {
    std::vector<SpanRecord> collected = collect_spans(files[file], file);
    spans.insert(spans.end(), std::make_move_iterator(collected.begin()),
                 std::make_move_iterator(collected.end()));
  }
  auto gid = [](std::size_t file, std::uint64_t id) {
    return id == 0 ? std::uint64_t{0}
                   : (static_cast<std::uint64_t>(file) << 32) + id;
  };
  // (trace id, raw span id) -> the spans carrying that id, for cross-file
  // rparent resolution.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::pair<std::size_t, std::uint64_t>>>
      by_trace_id;  // value: (file, namespaced id)
  for (const SpanRecord& span : spans) {
    if (span.trace != 0) {
      by_trace_id[{span.trace, span.id}].emplace_back(span.file,
                                                      gid(span.file, span.id));
    }
  }

  double min_seconds = 0.0;
  bool seen = false;
  for (const SpanRecord& span : spans) {
    if (!seen || span.start_seconds < min_seconds) min_seconds = span.start_seconds;
    seen = true;
  }
  for (const std::vector<TraceEvent>& events : files) {
    for (const TraceEvent& event : events) {
      if (event.t_seconds <= 0.0) continue;
      if (!seen || event.t_seconds < min_seconds) min_seconds = event.t_seconds;
      seen = true;
    }
  }

  std::ofstream out(path);
  if (!out) return false;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const SpanRecord& span : spans) {
    std::uint64_t parent = gid(span.file, span.parent);
    if (span.parent == 0 && span.remote_parent != 0 && span.trace != 0) {
      auto it = by_trace_id.find({span.trace, span.remote_parent});
      if (it != by_trace_id.end()) {
        for (const auto& [file, candidate] : it->second) {
          if (file != span.file) {
            parent = candidate;
            break;
          }
        }
      }
    }
    comma();
    out << "{\"name\":" << mpss::obs::json_quoted(span.label)
        << ",\"ph\":\"X\",\"ts\":" << (span.start_seconds - min_seconds) * 1e6
        << ",\"dur\":" << span.duration_seconds * 1e6 << ",\"pid\":" << span.file
        << ",\"tid\":" << span.thread
        << ",\"args\":{\"span\":" << gid(span.file, span.id)
        << ",\"parent\":" << parent;
    if (span.trace != 0) out << ",\"trace\":" << span.trace;
    out << "}}";
  }
  for (std::size_t file = 0; file < files.size(); ++file) {
    for (const TraceEvent& event : files[file]) {
      if (event.kind == EventKind::kSpanBegin || event.kind == EventKind::kSpanEnd) {
        continue;
      }
      if (event.t_seconds <= 0.0) continue;  // untimestamped build: spans only
      comma();
      out << "{\"name\":" << mpss::obs::json_quoted(event.label)
          << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
          << (event.t_seconds - min_seconds) * 1e6 << ",\"pid\":" << file
          << ",\"tid\":0,\"args\":{\"kind\":"
          << mpss::obs::json_quoted(mpss::obs::event_kind_name(event.kind))
          << ",\"span\":" << gid(file, event.span) << "}}";
    }
  }
  out << "]}\n";
  out.flush();
  return static_cast<bool>(out);
}

/// Replays the trace into a Prometheus text-format snapshot on stdout: the
/// offline twin of the daemon's live /metrics endpoint, for post-hoc analysis
/// of a captured JSONL file with the same tooling that reads the scrape.
void print_prometheus(const std::vector<TraceEvent>& events) {
  mpss::obs::Counters counters;
  mpss::obs::HistogramMap histograms;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kCounter) {
      counters.add(event.label);
      if (event.label == "service.queue_wait") {
        histograms["service.queue_wait_us"].record(event.a);
      } else if (event.label == "net.response" && event.value > 0.0) {
        histograms["net.request_us"].record(
            static_cast<std::uint64_t>(event.value * 1e6));
      }
    } else if (event.kind == EventKind::kSpanEnd) {
      histograms["span." + event.label + "_us"].record(
          static_cast<std::uint64_t>(event.value * 1e6));
    }
  }
  std::cout << mpss::obs::render_prometheus(counters, histograms);
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "usage: mpss_trace <trace.jsonl> [more.jsonl ...] [--csv] [--events] "
      "[--report] [--top=N] [--chrome=out.json] [--prom]\n";
  try {
    mpss::CliArgs args(argc, argv,
                       {"csv", "events", "help", "report", "top", "chrome", "prom"});
    if (args.get_bool("help", false)) {
      std::cout << usage;
      return kExitOk;
    }
    if (args.positional().empty()) {
      std::cerr << usage;
      return kExitUsage;
    }
    // One vector per input file: the Chrome merge and --report need the file
    // boundary (span-id namespaces); everything else reads the concatenation.
    std::vector<std::vector<TraceEvent>> files;
    for (const std::string& path : args.positional()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "mpss_trace: cannot open '" << path
                  << "' (missing file or unreadable)\n";
        return kExitMissingFile;
      }
      try {
        files.push_back(mpss::obs::parse_trace_jsonl(in));
      } catch (const std::invalid_argument& error) {
        std::cerr << "mpss_trace: malformed JSONL in '" << path
                  << "': " << error.what() << "\n";
        return kExitMalformed;
      }
    }
    std::vector<TraceEvent> events;
    for (const std::vector<TraceEvent>& file : files) {
      events.insert(events.end(), file.begin(), file.end());
    }

    if (args.get_bool("events", false)) {
      for (const TraceEvent& event : events) {
        std::cout << mpss::obs::to_jsonl(event) << "\n";
      }
      return kExitOk;
    }

    std::string chrome_path = args.get("chrome", "");
    if (!chrome_path.empty()) {
      if (!write_chrome_trace(files, chrome_path)) {
        std::cerr << "mpss_trace: cannot write '" << chrome_path << "'\n";
        return kExitUsage;
      }
      std::cout << "wrote " << chrome_path << "\n";
      return kExitOk;
    }

    if (args.get_bool("prom", false)) {
      print_prometheus(events);
      return kExitOk;
    }

    const bool csv = args.get_bool("csv", false);
    if (args.get_bool("report", false)) {
      auto top = static_cast<std::size_t>(args.get_int("top", 20));
      span_report(files, csv, top == 0 ? 20 : top);
      return kExitOk;
    }

    std::cout << events.size() << " events\n\n";
    if (events.empty()) return kExitOk;
    kind_summary(events, csv);
    phase_tables(events, csv);
    warm_start_table(events, csv);
    memory_table(events, csv);
    simplex_table(events, csv);
    service_table(events, csv);
    net_table(events, csv);
    arrival_table(events, csv);
    return kExitOk;
  } catch (const std::exception& error) {
    std::cerr << "mpss_trace: " << error.what() << "\n" << usage;
    return kExitUsage;
  }
}
