// mpss_trace: summarizes a JSONL solver trace (obs::JsonlSink output) into
// per-stage tables.
//
//   mpss_trace <trace.jsonl> [--csv] [--events]
//
// Prints, per engine run found in the trace:
//   * an event-kind summary (count per kind),
//   * a per-phase table (rounds, removals, final speed) for the offline
//     engines -- the paper's phase structure read straight off the trace,
//   * a warm-start summary (resumed flow rounds and their BFS passes) when the
//     offline engines ran incrementally,
//   * a simplex summary when LP pivots are present,
//   * an arrival table when online re-planning events are present.
//
// Exits 0 on success, 1 on unreadable input or malformed JSONL (so CI can use
// "mpss_trace <file>" as a trace round-trip check). --csv switches the tables
// to RFC-4180 CSV; --events dumps the raw events back out (parse check only).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "mpss/obs/trace.hpp"
#include "mpss/util/cli.hpp"
#include "mpss/util/table.hpp"

namespace {

using mpss::Table;
using mpss::obs::EventKind;
using mpss::obs::TraceEvent;

void print_table(const Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Label prefix up to the first '.' ("optimal.round" -> "optimal"): one engine
/// run's events share a prefix, which keeps mixed traces readable.
std::string label_prefix(const std::string& label) {
  auto dot = label.find('.');
  return dot == std::string::npos ? label : label.substr(0, dot);
}

void kind_summary(const std::vector<TraceEvent>& events, bool csv) {
  std::map<std::string, std::size_t> counts;
  for (const TraceEvent& event : events) {
    ++counts[mpss::obs::event_kind_name(event.kind)];
  }
  Table table({"kind", "events"});
  for (const auto& [kind, count] : counts) table.row(kind, count);
  print_table(table, csv);
}

void phase_tables(const std::vector<TraceEvent>& events, bool csv) {
  // Per engine prefix: phase -> (rounds from kPhaseEnd, removal count).
  struct PhaseRow {
    std::size_t rounds = 0;
    std::size_t removals = 0;
    double speed = 0.0;
    bool seen = false;
  };
  std::map<std::string, std::map<std::uint64_t, PhaseRow>> engines;
  for (const TraceEvent& event : events) {
    std::string prefix = label_prefix(event.label);
    if (event.kind == EventKind::kPhaseEnd) {
      PhaseRow& row = engines[prefix][event.a];
      row.rounds = event.b;
      row.speed = event.value;
      row.seen = true;
    } else if (event.kind == EventKind::kCandidateRemoved) {
      ++engines[prefix][event.a].removals;
    }
  }
  for (const auto& [engine, phases] : engines) {
    std::cout << "phases [" << engine << "]\n";
    Table table({"phase", "rounds", "removals", "speed"});
    std::size_t total_rounds = 0;
    for (const auto& [phase, row] : phases) {
      table.row(phase, row.rounds, row.removals, Table::num(row.speed, 6));
      total_rounds += row.rounds;
    }
    table.row("total", total_rounds,
              std::count_if(events.begin(), events.end(),
                            [&engine](const TraceEvent& e) {
                              return e.kind == EventKind::kCandidateRemoved &&
                                     label_prefix(e.label) == engine;
                            }),
              "");
    print_table(table, csv);
  }
}

void warm_start_table(const std::vector<TraceEvent>& events, bool csv) {
  // The offline engines emit one "<engine>.warm_start" kCounter event per
  // resumed flow round (a = phase, b = round, value = resume BFS passes).
  struct WarmRow {
    std::size_t resumes = 0;
    double resume_bfs = 0.0;
  };
  std::map<std::string, WarmRow> engines;
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kCounter) continue;
    const std::string& label = event.label;
    if (label.size() < 11 || label.compare(label.size() - 11, 11, ".warm_start") != 0) {
      continue;
    }
    WarmRow& row = engines[label_prefix(label)];
    ++row.resumes;
    row.resume_bfs += event.value;
  }
  if (engines.empty()) return;
  std::cout << "warm starts\n";
  Table table({"engine", "resumes", "resume_bfs"});
  for (const auto& [engine, row] : engines) {
    table.row(engine, row.resumes, static_cast<std::size_t>(row.resume_bfs));
  }
  print_table(table, csv);
}

void simplex_table(const std::vector<TraceEvent>& events, bool csv) {
  std::size_t pivots = 0;
  std::size_t degenerate = 0;
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kSimplexPivot) continue;
    ++pivots;
    if (event.value <= 1e-9) ++degenerate;
  }
  if (pivots == 0) return;
  std::cout << "simplex\n";
  Table table({"pivots", "degenerate"});
  table.row(pivots, degenerate);
  print_table(table, csv);
}

void arrival_table(const std::vector<TraceEvent>& events, bool csv) {
  bool any = false;
  Table table({"arrival", "available", "plan_seconds"});
  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kArrival) continue;
    any = true;
    table.row(event.a, event.b, Table::num(event.value, 6));
  }
  if (!any) return;
  std::cout << "arrivals\n";
  print_table(table, csv);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mpss::CliArgs args(argc, argv, {"csv", "events", "help"});
    if (args.get_bool("help", false) || args.positional().size() != 1) {
      std::cerr << "usage: mpss_trace <trace.jsonl> [--csv] [--events]\n";
      return args.get_bool("help", false) ? 0 : 1;
    }
    const std::string& path = args.positional()[0];
    std::ifstream in(path);
    if (!in) {
      std::cerr << "mpss_trace: cannot open " << path << "\n";
      return 1;
    }
    std::vector<TraceEvent> events = mpss::obs::parse_trace_jsonl(in);

    if (args.get_bool("events", false)) {
      for (const TraceEvent& event : events) {
        std::cout << mpss::obs::to_jsonl(event) << "\n";
      }
      return 0;
    }

    const bool csv = args.get_bool("csv", false);
    std::cout << events.size() << " events\n\n";
    if (events.empty()) return 0;
    kind_summary(events, csv);
    phase_tables(events, csv);
    warm_start_table(events, csv);
    simplex_table(events, csv);
    arrival_table(events, csv);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "mpss_trace: " << error.what() << "\n";
    return 1;
  }
}
