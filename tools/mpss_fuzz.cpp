// mpss_fuzz: bug-flushing sweeps over the wire decoders and the solve engines
// (S48). Three modes, each deterministic under --seed:
//
//   --frames       random and mutated byte streams into read_frame and the
//                  protocol decoders: every input must parse, be cleanly
//                  rejected (FrameError / ProtocolError), or hit clean EOF --
//                  never crash, hang, or leak another exception type.
//   --instances    mutated instance JSON into instance_from_json: success or
//                  std::invalid_argument, nothing else. Includes a fixed
//                  hostile corpus (1e300 / 1e309 / deep nesting / huge digit
//                  strings) that once triggered undefined casts.
//   --differential random instances through exact vs fast vs LP: fast must
//                  agree with exact to 1e-6 relative, LP must never beat the
//                  optimum by more than 1e-6, and returned schedules must
//                  satisfy the instance (violations() == 0).
//
// With no mode flags, all three run. Exit codes: 0 clean, 1 findings, 2 usage.
//
//   mpss_fuzz --frames --instances --differential --runs=5000 --max-seconds=240

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpss/core/instance_json.hpp"
#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/cli.hpp"
#include "mpss/util/random.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using mpss::Instance;
using mpss::Xoshiro256;

struct Findings {
  int count = 0;

  void report(const std::string& mode, std::uint64_t seed,
              const std::string& what) {
    ++count;
    std::fprintf(stderr, "FINDING [%s] seed=%llu: %s\n", mode.c_str(),
                 static_cast<unsigned long long>(seed), what.c_str());
  }
};

/// Wall-clock budget shared by all modes; 0 = unlimited.
struct WallCap {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  std::int64_t max_seconds = 0;

  [[nodiscard]] bool exhausted() const {
    if (max_seconds <= 0) return false;
    return std::chrono::steady_clock::now() - start >=
           std::chrono::seconds(max_seconds);
  }
};

/// Flip/insert/delete a few bytes of `text`, seeded. Mutations are small so
/// most outputs stay near-valid -- the interesting region for parsers.
std::string mutate(std::string text, Xoshiro256& rng) {
  if (text.empty()) return text;
  const std::size_t edits = 1 + rng.below(4);
  for (std::size_t edit = 0; edit < edits; ++edit) {
    const std::size_t position = rng.below(text.size());
    switch (rng.below(3)) {
      case 0:  // flip one byte to a random printable-or-not value
        text[position] = static_cast<char>(rng.below(256));
        break;
      case 1:  // insert a byte (structural chars are overrepresented on purpose)
        text.insert(position, 1, "{}[]\",:0123456789eE.-"[rng.below(21)]);
        break;
      default:  // delete a byte
        text.erase(position, 1);
        break;
    }
    if (text.empty()) break;
  }
  return text;
}

/// A syntactically valid request to mutate from, varied by seed.
std::string seed_request_json(Xoshiro256& rng) {
  mpss::net::Request request;
  request.id = rng.below(1000);
  switch (rng.below(4)) {
    case 0: request.verb = mpss::net::Verb::kHealth; break;
    case 1: request.verb = mpss::net::Verb::kStats; break;
    case 2: request.verb = mpss::net::Verb::kMetrics; break;
    default: {
      request.verb = mpss::net::Verb::kSolve;
      mpss::UniformWorkload workload;
      workload.jobs = 1 + rng.below(4);
      workload.machines = 1 + rng.below(3);
      workload.horizon = 12;
      request.instances.push_back(mpss::generate_uniform(workload, rng()));
      request.priority = static_cast<int>(rng.below(5));
      request.deadline_ms = static_cast<std::int64_t>(rng.below(1000));
      break;
    }
  }
  return encode_request(request);
}

/// Feed `bytes` through a socketpair into read_frame (writer closed first, so
/// truncation is always observable). Any exception other than FrameError is a
/// finding; so is a hang, which the frame deadline converts into kTimeout.
bool stream_is_handled(const std::string& bytes, std::string& error) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    error = "socketpair failed";
    return false;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::send(fds[1], bytes.data() + written, bytes.size() - written,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
  ::close(fds[1]);
  bool ok = true;
  try {
    std::string payload;
    // Drain every frame in the stream, not just the first.
    while (mpss::net::read_frame(fds[0], payload)) {
    }
  } catch (const mpss::net::FrameError&) {
    // typed rejection: expected
  } catch (const std::exception& unexpected) {
    error = std::string("read_frame leaked ") + unexpected.what();
    ok = false;
  }
  ::close(fds[0]);
  return ok;
}

int run_frames(std::int64_t runs, std::uint64_t seed, Findings& findings,
               const WallCap& cap) {
  std::int64_t done = 0;
  for (; done < runs && !cap.exhausted(); ++done) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(done);
    Xoshiro256 rng(case_seed);
    std::string error;

    // 1. Raw bytes: random length, random content, sometimes a plausible
    //    big-endian prefix so the payload branch gets exercised too.
    std::string raw(rng.below(200), '\0');
    for (char& byte : raw) byte = static_cast<char>(rng.below(256));
    if (raw.size() >= 4 && rng.bernoulli(0.5)) {
      const auto promised = static_cast<std::uint32_t>(rng.below(300));
      raw[0] = static_cast<char>(promised >> 24);
      raw[1] = static_cast<char>(promised >> 16);
      raw[2] = static_cast<char>(promised >> 8);
      raw[3] = static_cast<char>(promised);
    }
    if (!stream_is_handled(raw, error)) {
      findings.report("frames", case_seed, error);
    }

    // 2. Mutated valid request JSON into decode_request: ProtocolError or
    //    success only.
    const std::string mutated = mutate(seed_request_json(rng), rng);
    try {
      (void)mpss::net::decode_request(mutated);
    } catch (const mpss::net::ProtocolError&) {
    } catch (const std::exception& unexpected) {
      findings.report("frames", case_seed,
                      std::string("decode_request leaked ") +
                          unexpected.what() + " on: " + mutated);
    }

    // 3. Same stream through decode_response (a hostile server must not be
    //    able to crash the client either).
    try {
      (void)mpss::net::decode_response(mutated);
    } catch (const mpss::net::ProtocolError&) {
    } catch (const std::exception& unexpected) {
      findings.report("frames", case_seed,
                      std::string("decode_response leaked ") +
                          unexpected.what() + " on: " + mutated);
    }
  }
  std::printf("frames: %lld cases\n", static_cast<long long>(done));
  return findings.count;
}

int run_instances(std::int64_t runs, std::uint64_t seed, Findings& findings,
                  const WallCap& cap) {
  // Fixed hostile corpus first: documents that historically reached undefined
  // casts or stress the parser's limits. Must reject with invalid_argument.
  const std::vector<std::string> hostile = {
      R"({"mpss_instance":1,"machines":1e300,"jobs":[]})",
      R"({"mpss_instance":1,"machines":1e309,"jobs":[]})",
      R"({"mpss_instance":1,"machines":2.5,"jobs":[]})",
      R"({"mpss_instance":1,"machines":-1e300,"jobs":[]})",
      R"({"mpss_instance":1,"machines":2,"jobs":[[")" + std::string(4096, '9') +
          R"(","4","2"]]})",
      R"({"mpss_instance":1,"machines":2,"jobs":[["1","4","1/0"]]})",
      std::string(512, '[') + std::string(512, ']'),
  };
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    try {
      (void)mpss::instance_from_json(hostile[i]);
      // Parsing succeeding is fine only for inputs that are actually valid;
      // every corpus entry above is malformed, so success is a finding.
      findings.report("instances", i, "hostile corpus entry accepted: " +
                                          hostile[i].substr(0, 80));
    } catch (const std::invalid_argument&) {
    } catch (const std::exception& unexpected) {
      findings.report("instances", i,
                      std::string("instance_from_json leaked ") +
                          unexpected.what() + " on corpus entry " +
                          std::to_string(i));
    }
  }

  std::int64_t done = 0;
  for (; done < runs && !cap.exhausted(); ++done) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(done);
    Xoshiro256 rng(case_seed);
    mpss::UniformWorkload workload;
    workload.jobs = 1 + rng.below(6);
    workload.machines = 1 + rng.below(4);
    workload.horizon = 16;
    const std::string valid =
        mpss::instance_to_json(mpss::generate_uniform(workload, rng()));

    // Round trip of the unmutated document must succeed.
    try {
      (void)mpss::instance_from_json(valid);
    } catch (const std::exception& unexpected) {
      findings.report("instances", case_seed,
                      std::string("round trip rejected its own output: ") +
                          unexpected.what());
      continue;
    }

    const std::string mutated = mutate(valid, rng);
    try {
      (void)mpss::instance_from_json(mutated);
    } catch (const std::invalid_argument&) {
    } catch (const std::exception& unexpected) {
      findings.report("instances", case_seed,
                      std::string("instance_from_json leaked ") +
                          unexpected.what() + " on: " + mutated);
    }
  }
  std::printf("instances: %lld cases (+%zu hostile corpus entries)\n",
              static_cast<long long>(done), hostile.size());
  return findings.count;
}

int run_differential(std::int64_t runs, std::uint64_t seed, Findings& findings,
                     const WallCap& cap) {
  std::int64_t done = 0;
  for (; done < runs && !cap.exhausted(); ++done) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(done);
    Xoshiro256 rng(case_seed);
    Instance instance = [&]() -> Instance {
      switch (rng.below(4)) {
        case 0: {
          mpss::UniformWorkload w;
          w.jobs = 2 + rng.below(10);
          w.machines = 1 + rng.below(4);
          w.horizon = 24;
          w.max_window = 8;
          w.max_work = 6;
          return mpss::generate_uniform(w, rng());
        }
        case 1: {
          mpss::BurstyWorkload w;
          w.bursts = 1 + rng.below(3);
          w.jobs_per_burst = 2 + rng.below(4);
          w.machines = 1 + rng.below(4);
          return mpss::generate_bursty(w, rng());
        }
        case 2: {
          mpss::LaminarWorkload w;
          w.jobs = 2 + rng.below(10);
          w.machines = 1 + rng.below(4);
          w.depth = 3;
          return mpss::generate_laminar(w, rng());
        }
        default: {
          mpss::AgreeableWorkload w;
          w.jobs = 2 + rng.below(10);
          w.machines = 1 + rng.below(4);
          w.horizon = 24;
          return mpss::generate_agreeable(w, rng());
        }
      }
    }();

    mpss::SolveOptions exact_options;
    exact_options.engine = mpss::Engine::kExact;
    mpss::SolveResult exact = mpss::solve(instance, exact_options);
    if (!exact.ok()) {
      findings.report("differential", case_seed,
                      "exact solve failed: " + exact.error_detail);
      continue;
    }
    if (exact.violations(instance) != 0) {
      findings.report("differential", case_seed,
                      "exact schedule violates its instance");
    }

    mpss::SolveOptions fast_options;
    fast_options.engine = mpss::Engine::kFast;
    mpss::SolveResult fast = mpss::solve(instance, fast_options);
    if (!fast.ok()) {
      findings.report("differential", case_seed,
                      "fast solve failed: " + fast.error_detail);
    } else {
      const double gap = std::fabs(fast.energy - exact.energy);
      if (gap > 1e-6 * std::max(1.0, exact.energy)) {
        findings.report("differential", case_seed,
                        "fast disagrees with exact: fast=" +
                            std::to_string(fast.energy) +
                            " exact=" + std::to_string(exact.energy));
      }
      if (fast.violations(instance) != 0) {
        findings.report("differential", case_seed,
                        "fast schedule violates its instance");
      }
    }

    mpss::SolveOptions lp_options;
    lp_options.engine = mpss::Engine::kLp;
    lp_options.lp_grid = 4;
    mpss::SolveResult lp = mpss::solve(instance, lp_options);
    if (lp.ok() && lp.energy < exact.energy - 1e-6) {
      // The LP is a relaxation-free feasible schedule on a coarser grid, so
      // beating the exact optimum means one of the two is wrong.
      findings.report("differential", case_seed,
                      "lp beat the exact optimum: lp=" +
                          std::to_string(lp.energy) +
                          " exact=" + std::to_string(exact.energy));
    }
  }
  std::printf("differential: %lld cases\n", static_cast<long long>(done));
  return findings.count;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t runs = 0;
  std::uint64_t seed = 0;
  bool frames = false, instances = false, differential = false;
  std::int64_t max_seconds = 0;
  try {
    mpss::CliArgs args(argc, argv,
                       {"frames", "instances", "differential", "runs", "seed",
                        "max-seconds", "help"});
    if (args.get_bool("help", false)) {
      std::printf(
          "usage: mpss_fuzz [--frames] [--instances] [--differential]\n"
          "                 [--runs=N] [--seed=S] [--max-seconds=T]\n");
      return 0;
    }
    runs = args.get_int("runs", 1000);
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    frames = args.get_bool("frames", false);
    instances = args.get_bool("instances", false);
    differential = args.get_bool("differential", false);
    max_seconds = args.get_int("max-seconds", 0);
    if (runs <= 0) throw std::invalid_argument("--runs must be positive");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mpss_fuzz: %s\n", error.what());
    return 2;
  }
  if (!frames && !instances && !differential) {
    frames = instances = differential = true;
  }

  Findings findings;
  WallCap cap;
  cap.max_seconds = max_seconds;
  if (frames) run_frames(runs, seed, findings, cap);
  if (instances) run_instances(runs, seed, findings, cap);
  if (differential) run_differential(runs, seed, findings, cap);

  if (findings.count > 0) {
    std::fprintf(stderr, "mpss_fuzz: %d finding(s)\n", findings.count);
    return 1;
  }
  std::printf("mpss_fuzz: clean\n");
  return 0;
}
