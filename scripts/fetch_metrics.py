#!/usr/bin/env python3
"""Fetch a Prometheus exposition document from a metrics endpoint, raw-socket.

    scripts/fetch_metrics.py HOST:PORT [--require METRIC [--require ...]]

Speaks one HTTP/1.0 GET /metrics exchange against the mpss_served
--metrics-port listener (stdlib socket only -- no requests/urllib3 dependency,
and it exercises the daemon's actual byte-level framing the way a stock
scraper would). Prints the body to stdout. Exit codes:

    0  200 response; every --require METRIC is present with a nonzero value
    1  usage error
    2  connect/transport failure or non-200 response
    3  a required metric is missing or zero

CI uses this to assert the scrape endpoint serves real counters
(e.g. --require mpss_net_requests_total after driving solves through the
daemon).
"""

import socket
import sys


def fetch(host: str, port: int) -> str:
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        chunks = []
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode("utf-8", errors="replace")
    head, sep, body = response.partition("\r\n\r\n")
    if not sep:
        raise RuntimeError(f"no header/body separator in response: {response!r:.120}")
    status = head.split("\r\n", 1)[0]
    if " 200 " not in status:
        raise RuntimeError(f"non-200 response: {status}")
    return body


def metric_value(body: str, name: str) -> float:
    """Largest sample value for `name` (samples may repeat with labels)."""
    best = None
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        sample, _, value = line.rpartition(" ")
        base = sample.split("{", 1)[0]
        if base == name:
            best = max(best or 0.0, float(value))
    if best is None:
        raise KeyError(name)
    return best


def main(argv: list[str]) -> int:
    args = argv[1:]
    if not args or ":" not in args[0]:
        print(__doc__, file=sys.stderr)
        return 1
    host, _, port_text = args[0].rpartition(":")
    required = []
    rest = args[1:]
    while rest:
        if rest[0] != "--require" or len(rest) < 2:
            print(__doc__, file=sys.stderr)
            return 1
        required.append(rest[1])
        rest = rest[2:]

    try:
        body = fetch(host, int(port_text))
    except (OSError, RuntimeError, ValueError) as error:
        print(f"fetch_metrics: {error}", file=sys.stderr)
        return 2

    sys.stdout.write(body)
    for name in required:
        try:
            value = metric_value(body, name)
        except KeyError:
            print(f"fetch_metrics: required metric {name} is absent", file=sys.stderr)
            return 3
        if value == 0:
            print(f"fetch_metrics: required metric {name} is zero", file=sys.stderr)
            return 3
        print(f"fetch_metrics: {name} = {value}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
