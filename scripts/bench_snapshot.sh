#!/usr/bin/env bash
# Snapshots the offline-engine and service-layer micro-benchmarks into
# BENCH_offline.json at the repository root (machine-readable: google-benchmark
# JSON, including the bfs_rounds/aug_paths counters the warm-start acceptance
# criterion reads and the BM_Service* throughput/cache benchmarks the batch-API
# acceptance criterion reads).
#
#   scripts/bench_snapshot.sh [extra benchmark args...]
#
# Builds if needed, then runs bench_offline and bench_service with
# --benchmark_format=json and merges their "benchmarks" arrays (bench_offline's
# context block wins -- both run on the same host). Narrow the run with e.g.:
#   scripts/bench_snapshot.sh --benchmark_filter='IncrementalRounds'
# (a filter that empties one binary's run list is fine; the merge keeps the
# other's results).
set -euo pipefail
cd "$(dirname "$0")/.."

for bench in bench_offline bench_service; do
  if [ ! -x "build/bench/${bench}" ]; then
    cmake -B build -G Ninja
    cmake --build build --target "${bench}"
  fi
done

build/bench/bench_offline \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part1.json \
  --benchmark_out_format=json \
  "$@"

build/bench/bench_service \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part2.json \
  --benchmark_out_format=json \
  "$@"

python3 - <<'EOF'
import json

with open("BENCH_offline.part1.json", encoding="utf-8") as handle:
    merged = json.load(handle)
with open("BENCH_offline.part2.json", encoding="utf-8") as handle:
    service = json.load(handle)
merged["benchmarks"] = merged.get("benchmarks", []) + service.get("benchmarks", [])

with open("BENCH_offline.json", "w", encoding="utf-8") as handle:
    json.dump(merged, handle, indent=2)
    handle.write("\n")
EOF
rm -f BENCH_offline.part1.json BENCH_offline.part2.json

echo "Wrote BENCH_offline.json"
