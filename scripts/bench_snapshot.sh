#!/usr/bin/env bash
# Snapshots the offline-engine micro-benchmarks into BENCH_offline.json at the
# repository root (machine-readable: google-benchmark JSON, including the
# bfs_rounds/aug_paths counters the warm-start acceptance criterion reads).
#
#   scripts/bench_snapshot.sh [extra benchmark args...]
#
# Builds if needed, then runs bench_offline with --benchmark_format=json.
# Narrow the run with e.g.:
#   scripts/bench_snapshot.sh --benchmark_filter='IncrementalRounds'
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -x build/bench/bench_offline ]; then
  cmake -B build -G Ninja
  cmake --build build --target bench_offline
fi

build/bench/bench_offline \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.json \
  --benchmark_out_format=json \
  "$@"

echo "Wrote BENCH_offline.json"
