#!/usr/bin/env bash
# Snapshots the offline-engine, service-layer, and solve-daemon
# micro-benchmarks into BENCH_offline.json at the repository root
# (machine-readable: google-benchmark JSON, including the bfs_rounds/aug_paths
# counters the warm-start acceptance criterion reads, the BM_Service*
# throughput/cache benchmarks the batch-API acceptance criterion reads, and
# the BM_Server* loopback benchmarks the network acceptance criterion reads).
#
#   scripts/bench_snapshot.sh [extra benchmark args...]
#
# Builds if needed, then runs bench_offline, bench_service, and bench_server
# with --benchmark_format=json and merges their "benchmarks" arrays
# (bench_offline's context block wins -- all run on the same host). Narrow the
# run with e.g.:
#   scripts/bench_snapshot.sh --benchmark_filter='IncrementalRounds'
# (a filter that empties one binary's run list is fine; the merge keeps the
# other's results).
set -euo pipefail
cd "$(dirname "$0")/.."

for bench in bench_offline bench_service bench_server; do
  if [ ! -x "build/bench/${bench}" ]; then
    cmake -B build -G Ninja
    cmake --build build --target "${bench}"
  fi
done

build/bench/bench_offline \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part1.json \
  --benchmark_out_format=json \
  "$@"

build/bench/bench_service \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part2.json \
  --benchmark_out_format=json \
  "$@"

build/bench/bench_server \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part3.json \
  --benchmark_out_format=json \
  "$@"

python3 - <<'EOF'
import json

with open("BENCH_offline.part1.json", encoding="utf-8") as handle:
    merged = json.load(handle)
for part in ("BENCH_offline.part2.json", "BENCH_offline.part3.json"):
    with open(part, encoding="utf-8") as handle:
        extra = json.load(handle)
    merged["benchmarks"] = merged.get("benchmarks", []) + extra.get("benchmarks", [])

with open("BENCH_offline.json", "w", encoding="utf-8") as handle:
    json.dump(merged, handle, indent=2)
    handle.write("\n")
EOF
rm -f BENCH_offline.part1.json BENCH_offline.part2.json BENCH_offline.part3.json

echo "Wrote BENCH_offline.json"
