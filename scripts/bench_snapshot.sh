#!/usr/bin/env bash
# Snapshots the offline-engine, service-layer, solve-daemon, and flow-kernel
# micro-benchmarks into BENCH_offline.json at the repository root
# (machine-readable: google-benchmark JSON, including the bfs_rounds/aug_paths
# counters the warm-start acceptance criterion reads, the BM_Service*
# throughput/cache benchmarks the batch-API acceptance criterion reads, the
# BM_Server* loopback benchmarks the network acceptance criterion reads, and
# the BM_FlowCsr* steady-state kernel benchmarks the S46 memory-architecture
# gate reads).
#
#   scripts/bench_snapshot.sh [extra benchmark args...]
#
# Honest-numbers discipline: a snapshot is only meaningful from an optimized
# build, so the script force-configures the build tree Release when the CMake
# cache says anything else, embeds the project build type in the merged JSON
# ("project_build_type"), and aborts if Google Benchmark self-reports a debug
# library. Debian's libbenchmark package is compiled without NDEBUG and always
# reports "debug" even though the code under test is Release; on such hosts
# set MPSS_BENCH_ALLOW_DEBUG_LIBBENCHMARK=1 to acknowledge the harness-side
# warning and proceed (the project_build_type field still records the truth
# about the measured code).
#
# Narrow the run with e.g.:
#   scripts/bench_snapshot.sh --benchmark_filter='IncrementalRounds'
# (a filter that empties one binary's run list is fine; the merge keeps the
# other's results).
set -euo pipefail
cd "$(dirname "$0")/.."

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt 2>/dev/null | head -n1 || true)"
case "${build_type}" in
  Release|RelWithDebInfo) ;;
  *)
    echo "bench_snapshot: build tree is '${build_type:-unconfigured}', forcing Release" >&2
    cmake -B build -DCMAKE_BUILD_TYPE=Release
    build_type="Release"
    ;;
esac
export MPSS_BENCH_BUILD_TYPE="${build_type}"

for bench in bench_offline bench_service bench_server bench_flow; do
  cmake --build build --target "${bench}"
done

build/bench/bench_offline \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part1.json \
  --benchmark_out_format=json \
  "$@"

build/bench/bench_service \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part2.json \
  --benchmark_out_format=json \
  "$@"

build/bench/bench_server \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part3.json \
  --benchmark_out_format=json \
  "$@"

build/bench/bench_flow \
  --benchmark_format=json \
  --benchmark_out=BENCH_offline.part4.json \
  --benchmark_out_format=json \
  "$@"

python3 - <<'EOF'
import json
import os
import sys

parts = ["BENCH_offline.part1.json", "BENCH_offline.part2.json",
         "BENCH_offline.part3.json", "BENCH_offline.part4.json"]

with open(parts[0], encoding="utf-8") as handle:
    merged = json.load(handle)
for part in parts[1:]:
    with open(part, encoding="utf-8") as handle:
        extra = json.load(handle)
    merged["benchmarks"] = merged.get("benchmarks", []) + extra.get("benchmarks", [])

library_build = merged.get("context", {}).get("library_build_type", "unknown")
if library_build == "debug" and not os.environ.get("MPSS_BENCH_ALLOW_DEBUG_LIBBENCHMARK"):
    sys.exit(
        "bench_snapshot: Google Benchmark reports a debug library "
        "(library_build_type=debug); refusing to snapshot. If this is a "
        "distro libbenchmark built without NDEBUG (the project code itself "
        "is Release), re-run with MPSS_BENCH_ALLOW_DEBUG_LIBBENCHMARK=1."
    )

# The field google-benchmark cannot know: what the measured library was
# compiled as. bench_compare.py and humans reading the snapshot both want it.
merged.setdefault("context", {})["project_build_type"] = os.environ.get(
    "MPSS_BENCH_BUILD_TYPE", "unknown")

with open("BENCH_offline.json", "w", encoding="utf-8") as handle:
    json.dump(merged, handle, indent=2)
    handle.write("\n")
EOF
rm -f BENCH_offline.part1.json BENCH_offline.part2.json \
      BENCH_offline.part3.json BENCH_offline.part4.json

echo "Wrote BENCH_offline.json (project_build_type=${build_type})"
