#!/usr/bin/env bash
# Reproduces the full evaluation: build, tests, micro-benchmarks and every
# experiment table, recording outputs at the repository root
# (test_output.txt / bench_output.txt), exactly as EXPERIMENTS.md references.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "=== $(basename "$b") ==="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. See test_output.txt and bench_output.txt."
