#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots and gate on regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [options]

Options:
    --metric {cpu_time,real_time}   metric to compare (default: cpu_time)
    --tolerance FRAC                allowed slowdown fraction for every
                                    benchmark (default: 0.10 = 10%)
    --tol NAME=FRAC                 per-benchmark override, repeatable
                                    (e.g. --tol BM_OptimalScheduleByJobs/64=0.25)
    --require PREFIX                fail unless the candidate has at least one
                                    iteration run whose name starts with PREFIX,
                                    repeatable (e.g. --require BM_Service)

Only "iteration" runs are compared; aggregates (BigO, RMS, mean/median/stddev)
are skipped — their semantics differ per benchmark and the raw iterations are
what the snapshot records. A benchmark present in the baseline but missing
from the candidate is a failure: silently dropping a benchmark is how
regressions hide. New benchmarks in the candidate are reported but pass.

Exit codes: 0 all within tolerance, 1 regression (or missing benchmark),
2 usage / unreadable input.
"""

import argparse
import json
import sys


def load_iterations(path, metric):
    """Map benchmark name -> metric value for the snapshot's iteration runs."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        sys.exit(f"bench_compare: cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        sys.exit(f"bench_compare: {path} is not valid JSON: {error}")
    if "benchmarks" not in data:
        sys.exit(f"bench_compare: {path} has no 'benchmarks' array "
                 "(not a google-benchmark JSON snapshot?)")
    runs = {}
    for bench in data["benchmarks"]:
        if bench.get("run_type") != "iteration":
            continue
        value = bench.get(metric)
        name = bench.get("name")
        if name is None or value is None:
            continue
        runs[name] = float(value)
    return runs


def parse_overrides(pairs):
    overrides = {}
    for pair in pairs:
        name, sep, frac = pair.rpartition("=")
        if not sep or not name:
            sys.exit(f"bench_compare: bad --tol '{pair}' (expected NAME=FRAC)")
        try:
            overrides[name] = float(frac)
        except ValueError:
            sys.exit(f"bench_compare: bad --tol fraction in '{pair}'")
    return overrides


def main():
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON snapshots.", add_help=True)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--metric", choices=("cpu_time", "real_time"),
                        default="cpu_time")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed slowdown fraction (default 0.10)")
    parser.add_argument("--tol", action="append", default=[], metavar="NAME=FRAC",
                        help="per-benchmark tolerance override")
    parser.add_argument("--require", action="append", default=[], metavar="PREFIX",
                        help="require a candidate benchmark with this name prefix")
    args = parser.parse_args()

    overrides = parse_overrides(args.tol)
    baseline = load_iterations(args.baseline, args.metric)
    candidate = load_iterations(args.candidate, args.metric)
    if not baseline:
        sys.exit(f"bench_compare: {args.baseline} has no iteration runs")

    width = max(len(name) for name in baseline)
    failures = []
    print(f"{'benchmark':<{width}}  {'base':>12}  {'cand':>12}  "
          f"{'delta':>8}  {'tol':>6}  verdict")
    for name in sorted(baseline):
        base = baseline[name]
        tol = overrides.get(name, args.tolerance)
        if name not in candidate:
            failures.append(name)
            print(f"{name:<{width}}  {base:>12.0f}  {'MISSING':>12}  "
                  f"{'':>8}  {tol:>6.0%}  FAIL (missing)")
            continue
        cand = candidate[name]
        delta = (cand - base) / base if base > 0 else 0.0
        ok = delta <= tol
        if not ok:
            failures.append(name)
        print(f"{name:<{width}}  {base:>12.0f}  {cand:>12.0f}  "
              f"{delta:>+7.1%}  {tol:>6.0%}  {'ok' if ok else 'FAIL'}")
    new = sorted(set(candidate) - set(baseline))
    for name in new:
        print(f"{name:<{width}}  {'--':>12}  {candidate[name]:>12.0f}  "
              f"{'':>8}  {'':>6}  new")

    # Required families: a snapshot that silently dropped a whole benchmark
    # binary (e.g. bench_service missing from the merged JSON) must not pass.
    for prefix in args.require:
        if not any(name.startswith(prefix) for name in candidate):
            failures.append(prefix)
            print(f"bench_compare: required prefix '{prefix}' has no candidate "
                  "benchmarks", file=sys.stderr)

    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s) beyond tolerance "
              f"({args.metric})", file=sys.stderr)
        return 1
    print(f"\nbench_compare: all {len(baseline)} benchmarks within tolerance "
          f"({args.metric})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
